//! Schema evolution: diff-driven incremental re-prepare and re-match.
//!
//! Registries are not write-once — schemas mutate continuously (renames,
//! moves, subtree inserts/deletes), and a `PUT` of revision *n+1* should not
//! pay the full prepare + DP cost of revision *n+1* from scratch when
//! revision *n* is resident. This module is the incremental path
//! (DESIGN.md §17), layered on the [`crate::diff`] edit script:
//!
//! - [`MatchSession::diff_trees`] computes the [`TreeDiff`] between two tree
//!   revisions, under a [`Phase::Diff`] trace span.
//! - [`MatchSession::reprepare`] rebuilds a [`PreparedSchema`] for the new
//!   revision, reusing the old revision's interned symbols for unrenamed
//!   matched nodes and its structural tables (waves, levels, leaf flags,
//!   parents) verbatim when the diff carries no structural ops.
//! - [`MatchSession::rematch`] recomputes only the DP rows in the diff's
//!   recompute closure (dirty nodes plus their ancestors), copying every
//!   other row bit-for-bit out of the previous outcome, and falls back
//!   losslessly to a full recompute when the closure exceeds
//!   [`EVOLVE_FALLBACK_THRESHOLD`] of the tree.
//!
//! Everything here is an *optimization*, never a semantic: each entry point
//! is bit-identical to its from-scratch counterpart by construction (a DP
//! row is a pure function of the node's own facts and its children's
//! finalized rows), and the `qmatch-datasets` property tests pin that over
//! drift-generated mutation chains.

use crate::algorithms::{
    hybrid_match_impl, hybrid_rematch_impl, use_parallel, LabelMatrix, MatchOutcome,
};
use crate::diff::TreeDiff;
use crate::intern::Symbol;
use crate::matrix::Precision;
use crate::session::{MatchSession, OwnedPreparedSchema, PreparedSchema};
use crate::trace::{Phase, Span};
use qmatch_xsd::{Properties, SchemaTree};
use std::collections::HashMap;
use std::sync::Arc;

/// Recompute-closure fraction above which [`MatchSession::rematch`] falls
/// back to a full recompute. Past this point the incremental driver saves
/// less than it spends on diff bookkeeping and row copies, and the full
/// path's contiguous writes are kinder to the cache. The fallback is
/// lossless — both paths produce bit-identical matrices.
pub const EVOLVE_FALLBACK_THRESHOLD: f64 = 0.5;

/// The result of [`MatchSession::rematch`]: the outcome plus how it was
/// obtained, so callers (serve metrics, `bench_evolve`) can attribute cost.
#[derive(Debug)]
pub struct Rematch {
    /// The finished match — bit-identical to a full
    /// [`MatchSession::hybrid`] over the same pair.
    pub outcome: MatchOutcome,
    /// Whether the incremental driver ran (`false` = lossless fallback to
    /// the full wavefront).
    pub incremental: bool,
    /// DP rows actually recomputed (the whole tree on fallback).
    pub rows_recomputed: usize,
    /// The label matrix of this `(source, target)` pair, retained so the
    /// *next* revision's [`MatchSession::rematch_evolved`] can copy the
    /// rows of unchanged labels instead of re-walking the session cache —
    /// on large schemas that lookup traffic, not the DP, dominates the
    /// re-match wall time.
    pub labels: LabelMatrix,
}

impl MatchSession {
    /// Computes the deterministic [`TreeDiff`] between two revisions of a
    /// schema, recording a [`Phase::Diff`] span (`rows` = new-tree nodes,
    /// `cells` = edit ops, `skipped` = rows the recompute closure excludes).
    pub fn diff_trees(&self, old: &SchemaTree, new: &SchemaTree) -> TreeDiff {
        let t0 = self.trace().start();
        let diff = TreeDiff::compute(old, new);
        self.trace().finish(
            t0,
            Span {
                rows: new.len() as u64,
                cells: diff.ops().len() as u64,
                skipped: (new.len() - diff.recompute_count()) as u64,
                ..Span::empty(Phase::Diff)
            },
        );
        diff
    }

    /// Re-derives the prepared artifacts for `new_tree` given the previous
    /// revision's `old` prepared schema and the `diff` between them —
    /// structurally identical to [`MatchSession::prepare`]`(new_tree)`
    /// (pinned by `assert_structural_eq` property tests), but:
    ///
    /// - matched, unrenamed nodes reuse `old`'s interned [`Symbol`]s, and
    ///   distinct labels already in `old`'s tables reuse their folded forms
    ///   and token vectors without re-entering the interner;
    /// - when the diff carries no structural ops
    ///   (`!diff.shape_changed()`), the wave schedules, levels, leaf
    ///   flags/partitions, and parent table are cloned from `old` verbatim
    ///   — the old→new mapping is the identity then, so they are the same
    ///   tables.
    ///
    /// `old` must have been prepared by **this** session (its symbols index
    /// this session's interner) and `diff` must be the diff of
    /// `old.tree()` → `new_tree`.
    pub fn reprepare<'t>(
        &self,
        old: &PreparedSchema<'_>,
        new_tree: &'t SchemaTree,
        diff: &TreeDiff,
    ) -> PreparedSchema<'t> {
        debug_assert_eq!(diff.old_len(), old.tree().len(), "diff matches old");
        debug_assert_eq!(diff.new_len(), new_tree.len(), "diff matches new");
        let t0 = self.trace().start();
        let mut symbols = Vec::with_capacity(new_tree.len());
        let mut distinct: Vec<Symbol> = Vec::new();
        let mut node_distinct = Vec::with_capacity(new_tree.len());
        let mut distinct_folded: Vec<String> = Vec::new();
        let mut distinct_tokens = Vec::new();
        let mut reused_symbols = 0u64;
        {
            // Symbols are session-global and interning is idempotent, so a
            // clean node's old symbol IS what intern() would return — reuse
            // skips the string hash. Renamed and inserted nodes go through
            // the interner as in `prepare`.
            let mut interner = self.interner().lock().expect("interner lock");
            for (id, node) in new_tree.iter() {
                let symbol = match diff.old_of(id) {
                    Some(o) if !diff.is_renamed(id) => {
                        reused_symbols += 1;
                        old.symbols[o.index()]
                    }
                    _ => interner.intern(&node.label),
                };
                symbols.push(symbol);
            }
            // Distinct tables in first-seen order, exactly as `prepare`;
            // folded/token copies come from the old tables when the label
            // was already distinct there (they are copies of the same
            // interner entries), else from the interner.
            let old_distinct: HashMap<Symbol, u32> = old
                .distinct
                .iter()
                .enumerate()
                .map(|(k, &s)| (s, k as u32))
                .collect();
            let mut local: HashMap<Symbol, u32> = HashMap::new();
            for &symbol in &symbols {
                let next = local.len() as u32;
                let id = *local.entry(symbol).or_insert(next);
                if id == next {
                    distinct.push(symbol);
                    match old_distinct.get(&symbol) {
                        Some(&k) => {
                            distinct_folded.push(old.distinct_folded[k as usize].clone());
                            distinct_tokens.push(old.distinct_tokens[k as usize].clone());
                        }
                        None => {
                            distinct_folded.push(interner.folded(symbol).to_owned());
                            distinct_tokens.push(interner.tokens(symbol).to_vec());
                        }
                    }
                }
                node_distinct.push(id);
            }
        }
        // Structural tables: with no structural edit ops the old→new node
        // mapping is the pre-order identity (every node matched, in order),
        // so the old tables describe the new tree verbatim.
        let (waves_height, waves_depth, levels, leaf_flags, leaves, internals, parents) =
            if !diff.shape_changed() {
                (
                    old.waves_height.clone(),
                    old.waves_depth.clone(),
                    old.levels.clone(),
                    old.leaf_flags.clone(),
                    old.leaves.clone(),
                    old.internals.clone(),
                    old.parents.clone(),
                )
            } else {
                let levels = new_tree.levels();
                let leaf_flags = new_tree.leaf_flags();
                let mut leaves = Vec::new();
                let mut internals = Vec::new();
                for (id, _) in new_tree.iter() {
                    if leaf_flags[id.index()] {
                        leaves.push(id);
                    } else {
                        internals.push(id);
                    }
                }
                let parents = new_tree
                    .iter()
                    .map(|(_, n)| n.parent.map_or(u32::MAX, |p| p.0))
                    .collect();
                (
                    crate::algorithms::waves_by_height(new_tree),
                    crate::algorithms::waves_by_depth(new_tree),
                    levels,
                    leaf_flags,
                    leaves,
                    internals,
                    parents,
                )
            };
        // Property tables always rebuild: they borrow `'t` from the new
        // tree, and the dedup is a cheap single pass.
        let mut node_props = Vec::with_capacity(new_tree.len());
        let mut distinct_props: Vec<&'t Properties> = Vec::new();
        let mut props_ids: HashMap<&'t Properties, u32> = HashMap::new();
        for (_, node) in new_tree.iter() {
            let next = props_ids.len() as u32;
            let id = *props_ids.entry(&node.properties).or_insert(next);
            if id == next {
                distinct_props.push(&node.properties);
            }
            node_props.push(id);
        }
        let prepared = PreparedSchema {
            tree: new_tree,
            symbols,
            distinct,
            node_distinct,
            distinct_folded,
            distinct_tokens,
            waves_height,
            waves_depth,
            levels,
            leaf_flags,
            leaves,
            internals,
            props: new_tree.iter().map(|(_, n)| &n.properties).collect(),
            parents,
            node_props,
            distinct_props,
        };
        self.trace().finish(
            t0,
            Span {
                rows: new_tree.len() as u64,
                cells: prepared.distinct.len() as u64,
                cache_hits: reused_symbols,
                ..Span::empty(Phase::Prepare)
            },
        );
        prepared
    }

    /// [`MatchSession::reprepare`] for registry-resident (owned) prepared
    /// schemas — the serve hot-update path. Bit-identical to
    /// [`MatchSession::prepare_owned`]`(new_tree)`.
    pub fn reprepare_owned(
        &self,
        old: &OwnedPreparedSchema,
        new_tree: Arc<SchemaTree>,
        diff: &TreeDiff,
    ) -> OwnedPreparedSchema {
        // SAFETY: identical to `prepare_owned` — the reference points into
        // the `Arc` allocation, which is immutable and address-stable while
        // any clone lives; the returned owner stores such a clone and only
        // re-exposes the borrow at the lifetime of `&self`.
        let raw: &'static SchemaTree = unsafe { &*Arc::as_ptr(&new_tree) };
        let prepared = self.reprepare(old.prepared(), raw, diff);
        OwnedPreparedSchema::from_raw_parts(prepared, new_tree)
    }

    /// Incremental hybrid re-match at the session's configured precision;
    /// see [`MatchSession::rematch_with_precision`].
    pub fn rematch(
        &self,
        new_source: &PreparedSchema,
        target: &PreparedSchema,
        diff: &TreeDiff,
        previous: &MatchOutcome,
    ) -> Rematch {
        self.rematch_with_precision(new_source, target, diff, previous, self.config().precision)
    }

    /// Re-matches an evolved source against an unchanged target, given the
    /// `diff` old→new and the `previous` outcome of matching the *old*
    /// source against the same target in this session at `precision`.
    ///
    /// Rows outside the diff's recompute closure are copied bit-for-bit
    /// from `previous`; rows inside it rerun the standard wave kernel.
    /// When the closure exceeds [`EVOLVE_FALLBACK_THRESHOLD`] of the tree —
    /// or `previous` does not line up with `diff`/`target`/`precision` —
    /// the full wavefront runs instead. Either way the result is
    /// bit-identical to [`MatchSession::hybrid`] over `(new_source,
    /// target)`.
    pub fn rematch_with_precision(
        &self,
        new_source: &PreparedSchema,
        target: &PreparedSchema,
        diff: &TreeDiff,
        previous: &MatchOutcome,
        precision: Precision,
    ) -> Rematch {
        self.rematch_inner(None, new_source, target, diff, previous, precision)
    }

    /// [`MatchSession::rematch`] that additionally reuses the *old*
    /// revision's label matrix: rows of distinct labels shared between the
    /// revisions are copied wholesale out of `old_labels` instead of being
    /// re-fetched pairwise from the session cache. Label comparisons are
    /// pure functions of the symbol pair, so the result stays bit-identical
    /// to [`MatchSession::hybrid`]; what changes is that the label phase
    /// becomes O(changed labels), which is what lets the incremental path
    /// actually win on large schemas.
    ///
    /// `old_labels` must be the matrix previously built for `(old_source,
    /// target)` *against the same `target`* — take it from the previous
    /// step's [`Rematch::labels`], or seed a chain with
    /// [`MatchSession::label_matrix`]. If its shape does not line up, the
    /// reuse is skipped (never wrong, just slower).
    #[allow(clippy::too_many_arguments)]
    pub fn rematch_evolved(
        &self,
        old_source: &PreparedSchema,
        old_labels: &LabelMatrix,
        new_source: &PreparedSchema,
        target: &PreparedSchema,
        diff: &TreeDiff,
        previous: &MatchOutcome,
    ) -> Rematch {
        self.rematch_inner(
            Some((old_source, old_labels)),
            new_source,
            target,
            diff,
            previous,
            self.config().precision,
        )
    }

    fn rematch_inner(
        &self,
        reuse: Option<(&PreparedSchema, &LabelMatrix)>,
        new_source: &PreparedSchema,
        target: &PreparedSchema,
        diff: &TreeDiff,
        previous: &MatchOutcome,
        precision: Precision,
    ) -> Rematch {
        debug_assert_eq!(diff.new_len(), new_source.tree().len(), "diff vs new");
        // Both arms need the label matrix, and both produce bit-identical
        // tables whether built fresh or evolved from the old revision's.
        let labels = reuse
            .and_then(|(old_source, old_labels)| {
                self.pair_labels_evolved(old_source, old_labels, new_source, target)
            })
            .unwrap_or_else(|| self.pair_labels(new_source, target));
        let compatible = previous.matrix.rows() == diff.old_len()
            && previous.matrix.cols() == target.tree().len()
            && previous.matrix.precision() == precision;
        if !compatible || diff.recompute_fraction() > EVOLVE_FALLBACK_THRESHOLD {
            // Mirrors `hybrid_with(new_source, target, true, precision)`
            // exactly, with the already-built labels.
            let outcome = hybrid_match_impl(
                new_source,
                target,
                self.config(),
                &labels,
                use_parallel(new_source.tree(), target.tree()),
                self.trace(),
                self.arena(),
                precision,
            );
            return Rematch {
                outcome,
                incremental: false,
                rows_recomputed: new_source.tree().len(),
                labels,
            };
        }
        let outcome = hybrid_rematch_impl(
            new_source,
            target,
            self.config(),
            &labels,
            diff,
            &previous.matrix,
            use_parallel(new_source.tree(), target.tree()),
            self.trace(),
            self.arena(),
            precision,
        );
        Rematch {
            outcome,
            incremental: true,
            rows_recomputed: diff.recompute_count(),
            labels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MatchConfig;

    fn po() -> SchemaTree {
        SchemaTree::from_labels(
            "PO",
            &[
                ("PO", None),
                ("OrderNo", Some(0)),
                ("Lines", Some(0)),
                ("Item", Some(2)),
                ("Quantity", Some(2)),
            ],
        )
    }

    fn po_renamed() -> SchemaTree {
        SchemaTree::from_labels(
            "PO",
            &[
                ("PO", None),
                ("OrderNo", Some(0)),
                ("Lines", Some(0)),
                ("Item", Some(2)),
                ("Qty", Some(2)),
            ],
        )
    }

    fn po_grown() -> SchemaTree {
        SchemaTree::from_labels(
            "PO",
            &[
                ("PO", None),
                ("OrderNo", Some(0)),
                ("Lines", Some(0)),
                ("Item", Some(2)),
                ("Quantity", Some(2)),
                ("UnitPrice", Some(2)),
                ("ShipTo", Some(0)),
                ("City", Some(6)),
            ],
        )
    }

    fn target() -> SchemaTree {
        SchemaTree::from_labels(
            "PurchaseOrder",
            &[
                ("PurchaseOrder", None),
                ("OrderNo", Some(0)),
                ("Items", Some(0)),
                ("Item", Some(2)),
                ("Qty", Some(2)),
                ("DeliverTo", Some(0)),
            ],
        )
    }

    #[test]
    fn reprepare_matches_prepare_from_scratch() {
        let session = MatchSession::new(MatchConfig::default());
        for new_tree in [po(), po_renamed(), po_grown()] {
            let old_tree = po();
            let old = session.prepare(&old_tree);
            let diff = session.diff_trees(&old_tree, &new_tree);
            let incremental = session.reprepare(&old, &new_tree, &diff);
            let scratch = session.prepare(&new_tree);
            incremental.assert_structural_eq(&scratch);
        }
    }

    #[test]
    fn rematch_is_bit_identical_to_full_hybrid() {
        let session = MatchSession::new(MatchConfig::default());
        let (old_tree, tgt) = (po(), target());
        let (old, pt) = (session.prepare(&old_tree), session.prepare(&tgt));
        let previous = session.hybrid(&old, &pt);
        for new_tree in [po(), po_renamed(), po_grown()] {
            let diff = session.diff_trees(&old_tree, &new_tree);
            let new = session.reprepare(&old, &new_tree, &diff);
            let got = session.rematch(&new, &pt, &diff, &previous);
            let want = session.hybrid(&new, &pt);
            assert_eq!(got.outcome.matrix, want.matrix);
            assert_eq!(got.outcome.total_qom, want.total_qom);
            if got.incremental {
                assert_eq!(got.rows_recomputed, diff.recompute_count());
            } else {
                assert_eq!(got.rows_recomputed, new_tree.len());
            }
        }
    }

    #[test]
    fn rematch_evolved_copies_label_rows_bit_identically() {
        let session = MatchSession::new(MatchConfig::default());
        let (old_tree, tgt) = (po(), target());
        let (old, pt) = (session.prepare(&old_tree), session.prepare(&tgt));
        let previous = session.hybrid(&old, &pt);
        let old_labels = session.label_matrix(&old, &pt);
        for new_tree in [po(), po_renamed(), po_grown()] {
            let diff = session.diff_trees(&old_tree, &new_tree);
            let new = session.reprepare(&old, &new_tree, &diff);
            let got = session.rematch_evolved(&old, &old_labels, &new, &pt, &diff, &previous);
            let want = session.hybrid(&new, &pt);
            assert_eq!(got.outcome.matrix, want.matrix);
            assert_eq!(got.outcome.total_qom, want.total_qom);
            // The returned matrix — part copied rows, part fresh — must be
            // indistinguishable from one built from scratch for the pair.
            let scratch = session.label_matrix(&new, &pt);
            assert_eq!(got.labels.distinct_cols_raw(), scratch.distinct_cols_raw());
            assert_eq!(got.labels.distinct_rows_raw(), scratch.distinct_rows_raw());
            assert_eq!(got.labels.score_table(), scratch.score_table());
        }
    }

    #[test]
    fn rematch_evolved_with_misshapen_old_labels_stays_correct() {
        let session = MatchSession::new(MatchConfig::default());
        let (old_tree, tgt) = (po(), target());
        let (old, pt) = (session.prepare(&old_tree), session.prepare(&tgt));
        let previous = session.hybrid(&old, &pt);
        // A label matrix for the wrong pair (self-match): reuse must be
        // skipped, never trusted into a wrong table.
        let wrong = session.label_matrix(&old, &old);
        let new_tree = po_grown();
        let diff = session.diff_trees(&old_tree, &new_tree);
        let new = session.reprepare(&old, &new_tree, &diff);
        let got = session.rematch_evolved(&old, &wrong, &new, &pt, &diff, &previous);
        assert_eq!(got.outcome.matrix, session.hybrid(&new, &pt).matrix);
    }

    #[test]
    fn identity_rematch_recomputes_nothing() {
        let session = MatchSession::new(MatchConfig::default());
        let (tree, tgt) = (po(), target());
        let (p, pt) = (session.prepare(&tree), session.prepare(&tgt));
        let previous = session.hybrid(&p, &pt);
        let diff = session.diff_trees(&tree, &tree);
        assert!(diff.is_identity());
        let got = session.rematch(&p, &pt, &diff, &previous);
        assert!(got.incremental);
        assert_eq!(got.rows_recomputed, 0);
        assert_eq!(got.outcome.matrix, previous.matrix);
    }

    #[test]
    fn oversized_closures_fall_back_to_full_recompute() {
        let session = MatchSession::new(MatchConfig::default());
        let (old_tree, tgt) = (po(), target());
        // Rename every node: the closure is the whole tree.
        let new_tree = SchemaTree::from_labels(
            "PO2",
            &[
                ("PO2", None),
                ("Num", Some(0)),
                ("Rows", Some(0)),
                ("Entry", Some(2)),
                ("Count", Some(2)),
            ],
        );
        let (old, pt) = (session.prepare(&old_tree), session.prepare(&tgt));
        let previous = session.hybrid(&old, &pt);
        let diff = session.diff_trees(&old_tree, &new_tree);
        assert!(diff.recompute_fraction() > EVOLVE_FALLBACK_THRESHOLD);
        let new = session.reprepare(&old, &new_tree, &diff);
        let got = session.rematch(&new, &pt, &diff, &previous);
        assert!(!got.incremental);
        assert_eq!(got.outcome.matrix, session.hybrid(&new, &pt).matrix);
    }

    #[test]
    fn mismatched_previous_outcomes_fall_back() {
        let session = MatchSession::new(MatchConfig::default());
        let (old_tree, tgt) = (po(), target());
        let (old, pt) = (session.prepare(&old_tree), session.prepare(&tgt));
        // A previous outcome of the wrong shape (self-match, 5×5 not 5×6).
        let wrong = session.hybrid(&old, &old);
        let diff = session.diff_trees(&old_tree, &old_tree);
        let got = session.rematch(&old, &pt, &diff, &wrong);
        assert!(!got.incremental, "shape mismatch must not be trusted");
        assert_eq!(got.outcome.matrix, session.hybrid(&old, &pt).matrix);
    }

    #[test]
    fn rematch_honors_precision_overrides() {
        let session = MatchSession::new(MatchConfig::default());
        // One leaf rename in the 8-node tree: closure {City, ShipTo, PO} is
        // 3/8, safely under the fallback threshold.
        let old_tree = po_grown();
        let new_tree = SchemaTree::from_labels(
            "PO",
            &[
                ("PO", None),
                ("OrderNo", Some(0)),
                ("Lines", Some(0)),
                ("Item", Some(2)),
                ("Quantity", Some(2)),
                ("UnitPrice", Some(2)),
                ("ShipTo", Some(0)),
                ("Town", Some(6)),
            ],
        );
        let tgt = target();
        let (old, pt) = (session.prepare(&old_tree), session.prepare(&tgt));
        let previous = session.hybrid_with(&old, &pt, true, Precision::F32);
        let diff = session.diff_trees(&old_tree, &new_tree);
        let new = session.reprepare(&old, &new_tree, &diff);
        let got =
            session.rematch_with_precision(&new, &pt, &diff, &previous.clone(), Precision::F32);
        assert!(got.incremental);
        let want = session.hybrid_with(&new, &pt, true, Precision::F32);
        assert_eq!(got.outcome.matrix, want.matrix);
        // An f64 request against an f32 previous falls back, still correct.
        let cross = session.rematch_with_precision(&new, &pt, &diff, &previous, Precision::F64);
        assert!(!cross.incremental);
        assert_eq!(
            cross.outcome.matrix,
            session.hybrid_with(&new, &pt, true, Precision::F64).matrix
        );
    }
}
