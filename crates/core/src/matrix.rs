//! Dense node-pair similarity matrix.
//!
//! Every match algorithm emits a [`SimMatrix`] with one row per source node
//! and one column per target node, values in `[0, 1]`. Mapping extraction
//! and evaluation work uniformly on this representation.
//!
//! # Storage precision
//!
//! The matrix stores scores either as `f64` (the default, bit-identical to
//! the paper arithmetic) or as `f32` ([`Precision::F32`], halving the memory
//! footprint of the quadratic pair table). Precision affects **storage
//! only**: every engine accumulates in `f64` and rounds once when a cell is
//! committed, so an `f32` matrix holds the nearest-`f32` value of the exact
//! `f64` score for that cell's inputs. See DESIGN.md §14 for the full
//! accuracy contract.

use qmatch_xsd::NodeId;
use std::marker::PhantomData;

/// Storage precision for a [`SimMatrix`].
///
/// `F64` (the default) reproduces the paper arithmetic bit-for-bit. `F32`
/// halves the quadratic matrix footprint; scores are rounded to the nearest
/// `f32` when stored (accumulation stays `f64`), which empirically keeps
/// every cell within `1e-6` of the `f64` score on the test corpora.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// 8-byte storage; bit-identical to the reference arithmetic.
    #[default]
    F64,
    /// 4-byte storage; ≤1e-6 score tolerance, identical extracted mappings
    /// on the shipped corpora.
    F32,
}

impl Precision {
    /// Stable lowercase name (`"f64"` / `"f32"`), used in CLI flags, query
    /// parameters, and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An out-of-bounds access on a [`SimMatrix`], with full coordinates so the
/// failure is diagnosable without a debugger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixIndexError {
    /// The requested row (source node index).
    pub row: usize,
    /// The requested column (target node index).
    pub col: usize,
    /// Number of rows in the matrix.
    pub rows: usize,
    /// Number of columns in the matrix.
    pub cols: usize,
}

impl std::fmt::Display for MatrixIndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix index ({},{}) out of bounds for {}x{} SimMatrix",
            self.row, self.col, self.rows, self.cols
        )
    }
}

impl std::error::Error for MatrixIndexError {}

/// The backing buffer of a [`SimMatrix`]: one variant per [`Precision`].
///
/// `pub(crate)` so the arena can pool recycled buffers without exposing the
/// representation.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum MatrixData {
    F64(Vec<f64>),
    F32(Vec<f32>),
}

impl MatrixData {
    fn len(&self) -> usize {
        match self {
            MatrixData::F64(v) => v.len(),
            MatrixData::F32(v) => v.len(),
        }
    }

    #[inline]
    fn at(&self, i: usize) -> f64 {
        match self {
            MatrixData::F64(v) => v[i],
            MatrixData::F32(v) => f64::from(v[i]),
        }
    }

    #[inline]
    fn put(&mut self, i: usize, value: f64) {
        match self {
            MatrixData::F64(v) => v[i] = value,
            MatrixData::F32(v) => v[i] = value as f32,
        }
    }
}

/// A cell scalar the kernels can be generic over: `f64` or `f32` storage
/// with `f64` arithmetic at the boundaries.
pub(crate) trait Score: Copy + Send + Sync + 'static {
    /// Rounds an exact `f64` score into storage representation.
    fn from_f64(v: f64) -> Self;
    /// Widens a stored score back to `f64` (exact for both precisions).
    fn to_f64(self) -> f64;
    /// The matrix's backing vec, if it stores this precision.
    fn data_vec_mut(m: &mut SimMatrix) -> Option<&mut Vec<Self>>;
    /// Read-only view of the backing vec, if it stores this precision —
    /// lets the incremental re-match copy finalized rows out of a previous
    /// outcome without widening through `f64`.
    fn data_vec(m: &SimMatrix) -> Option<&Vec<Self>>;
}

impl Score for f64 {
    #[inline]
    fn from_f64(v: f64) -> f64 {
        v
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    fn data_vec_mut(m: &mut SimMatrix) -> Option<&mut Vec<f64>> {
        match &mut m.data {
            MatrixData::F64(v) => Some(v),
            MatrixData::F32(_) => None,
        }
    }
    fn data_vec(m: &SimMatrix) -> Option<&Vec<f64>> {
        match &m.data {
            MatrixData::F64(v) => Some(v),
            MatrixData::F32(_) => None,
        }
    }
}

impl Score for f32 {
    #[inline]
    fn from_f64(v: f64) -> f32 {
        v as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
    fn data_vec_mut(m: &mut SimMatrix) -> Option<&mut Vec<f32>> {
        match &mut m.data {
            MatrixData::F32(v) => Some(v),
            MatrixData::F64(_) => None,
        }
    }
    fn data_vec(m: &SimMatrix) -> Option<&Vec<f32>> {
        match &m.data {
            MatrixData::F32(v) => Some(v),
            MatrixData::F64(_) => None,
        }
    }
}

/// Raw row-granular access to a [`SimMatrix`] for the wavefront kernels:
/// rows of the current wave are written in place (no per-row `Vec`
/// allocation + copy) while rows finalized in earlier waves are read.
///
/// # Safety contract
///
/// The level-synchronous wavefront guarantees the aliasing discipline:
/// * [`RawRows::row_mut`] may only be called for a row assigned to the
///   calling thread in the *current* wave, and each row is assigned to
///   exactly one thread — so mutable access is unique;
/// * [`RawRows::row`] may only be called for rows finalized in *earlier*
///   waves, whose threads were joined before this wave started — so shared
///   reads never alias a concurrent write.
pub(crate) struct RawRows<'a, S> {
    ptr: *mut S,
    rows: usize,
    cols: usize,
    _marker: PhantomData<&'a mut [S]>,
}

// SAFETY: RawRows is a bounds-tracked view into the matrix buffer; the
// wavefront discipline documented on the type keeps row accesses disjoint
// across threads.
unsafe impl<S: Send> Send for RawRows<'_, S> {}
unsafe impl<S: Sync> Sync for RawRows<'_, S> {}

impl<'a, S: Score> RawRows<'a, S> {
    /// A raw view over `m`, or `None` if `m` does not store precision `S`.
    pub(crate) fn new(m: &'a mut SimMatrix) -> Option<RawRows<'a, S>> {
        let (rows, cols) = (m.rows, m.cols);
        let v = S::data_vec_mut(m)?;
        Some(RawRows {
            ptr: v.as_mut_ptr(),
            rows,
            cols,
            _marker: PhantomData,
        })
    }

    /// A finalized row from an earlier wave.
    ///
    /// # Safety
    /// `r` must index a row committed in an earlier (already joined) wave;
    /// see the type-level contract.
    #[inline]
    pub(crate) unsafe fn row(&self, r: usize) -> &[S] {
        debug_assert!(r < self.rows);
        std::slice::from_raw_parts(self.ptr.add(r * self.cols), self.cols)
    }

    /// The writable row assigned to the calling thread in the current wave.
    ///
    /// # Safety
    /// `r` must be assigned to exactly this thread in the current wave; see
    /// the type-level contract.
    #[inline]
    #[allow(clippy::mut_from_ref)] // uniqueness is the documented caller contract
    pub(crate) unsafe fn row_mut(&self, r: usize) -> &mut [S] {
        debug_assert!(r < self.rows);
        std::slice::from_raw_parts_mut(self.ptr.add(r * self.cols), self.cols)
    }
}

/// A dense `rows × cols` matrix of similarity scores.
///
/// Note on `PartialEq`: matrices of different [`Precision`] are never equal,
/// even when every widened cell coincides — equality compares storage.
#[derive(Debug, Clone, PartialEq)]
pub struct SimMatrix {
    rows: usize,
    cols: usize,
    data: MatrixData,
}

impl SimMatrix {
    /// A zero-filled `f64` matrix for `rows` source nodes and `cols` target
    /// nodes.
    pub fn zeros(rows: usize, cols: usize) -> SimMatrix {
        SimMatrix::zeros_with(rows, cols, Precision::F64)
    }

    /// A zero-filled matrix with an explicit storage [`Precision`].
    pub fn zeros_with(rows: usize, cols: usize, precision: Precision) -> SimMatrix {
        let data = match precision {
            Precision::F64 => MatrixData::F64(vec![0.0; rows * cols]),
            Precision::F32 => MatrixData::F32(vec![0.0; rows * cols]),
        };
        SimMatrix { rows, cols, data }
    }

    /// Wraps an existing (possibly recycled, possibly *non-zeroed*) buffer.
    ///
    /// Invariant: the caller must overwrite **every** cell before the matrix
    /// escapes — the wavefront/row engines do, which is what lets the arena
    /// skip re-zeroing. `data.len()` must equal `rows * cols`.
    pub(crate) fn from_storage(rows: usize, cols: usize, data: MatrixData) -> SimMatrix {
        assert_eq!(data.len(), rows * cols, "storage length must be rows*cols");
        SimMatrix { rows, cols, data }
    }

    /// Consumes the matrix, returning its backing buffer for pooling.
    pub(crate) fn into_storage(self) -> MatrixData {
        self.data
    }

    /// The storage precision of this matrix.
    pub fn precision(&self) -> Precision {
        match self.data {
            MatrixData::F64(_) => Precision::F64,
            MatrixData::F32(_) => Precision::F32,
        }
    }

    /// Converts the matrix to the given storage precision (no-op when it
    /// already matches). `f32 → f64` widens exactly; `f64 → f32` rounds each
    /// cell to the nearest `f32`.
    pub fn with_precision(self, precision: Precision) -> SimMatrix {
        let data = match (self.data, precision) {
            (d @ MatrixData::F64(_), Precision::F64) => d,
            (d @ MatrixData::F32(_), Precision::F32) => d,
            (MatrixData::F64(v), Precision::F32) => {
                MatrixData::F32(v.iter().map(|&x| x as f32).collect())
            }
            (MatrixData::F32(v), Precision::F64) => {
                MatrixData::F64(v.iter().map(|&x| f64::from(x)).collect())
            }
        };
        SimMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Number of source nodes (rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of target nodes (columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    fn check(&self, source: NodeId, target: NodeId) -> Result<usize, MatrixIndexError> {
        let (r, c) = (source.index(), target.index());
        if r < self.rows && c < self.cols {
            Ok(r * self.cols + c)
        } else {
            Err(MatrixIndexError {
                row: r,
                col: c,
                rows: self.rows,
                cols: self.cols,
            })
        }
    }

    #[cold]
    #[inline(never)]
    fn oob(e: MatrixIndexError) -> ! {
        panic!("{e}");
    }

    /// The score for a node pair (widened to `f64` for `f32` storage).
    ///
    /// # Panics
    /// On out-of-bounds coordinates, with the offending `(row, col)` and the
    /// matrix dimensions in the message (in release builds too); use
    /// [`SimMatrix::try_get`] for a non-panicking variant.
    #[inline]
    pub fn get(&self, source: NodeId, target: NodeId) -> f64 {
        match self.check(source, target) {
            Ok(i) => self.data.at(i),
            Err(e) => Self::oob(e),
        }
    }

    /// Fallible [`SimMatrix::get`]: out-of-bounds coordinates return a
    /// [`MatrixIndexError`] carrying `(row, col)` and the dimensions.
    #[inline]
    pub fn try_get(&self, source: NodeId, target: NodeId) -> Result<f64, MatrixIndexError> {
        self.check(source, target).map(|i| self.data.at(i))
    }

    /// Sets the score for a node pair (rounded to `f32` for `f32` storage).
    ///
    /// # Panics
    /// On out-of-bounds coordinates, with full context; see
    /// [`SimMatrix::try_set`].
    #[inline]
    pub fn set(&mut self, source: NodeId, target: NodeId, value: f64) {
        match self.check(source, target) {
            Ok(i) => self.data.put(i, value),
            Err(e) => Self::oob(e),
        }
    }

    /// Fallible [`SimMatrix::set`].
    #[inline]
    pub fn try_set(
        &mut self,
        source: NodeId,
        target: NodeId,
        value: f64,
    ) -> Result<(), MatrixIndexError> {
        let i = self.check(source, target)?;
        self.data.put(i, value);
        Ok(())
    }

    /// One source node's row of scores, in target-id order.
    ///
    /// # Panics
    /// If the matrix stores `f32` (there is no `f64` slice to borrow) or the
    /// row is out of bounds. Use [`SimMatrix::get`]/[`SimMatrix::iter`] for
    /// precision-agnostic access.
    #[inline]
    pub fn row(&self, source: NodeId) -> &[f64] {
        let r = source.index();
        assert!(
            r < self.rows,
            "row {r} out of bounds for {}x{} SimMatrix",
            self.rows,
            self.cols
        );
        match &self.data {
            MatrixData::F64(v) => &v[r * self.cols..(r + 1) * self.cols],
            MatrixData::F32(_) => {
                panic!("SimMatrix::row requires f64 storage; this matrix is f32")
            }
        }
    }

    /// Overwrites one source node's row. `row` must hold exactly one value
    /// per target node. This is how the row-at-a-time engines commit rows
    /// that were computed out-of-place (values are rounded for `f32`
    /// storage).
    #[inline]
    pub fn set_row(&mut self, source: NodeId, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "row length must equal cols");
        let r = source.index();
        assert!(
            r < self.rows,
            "row {r} out of bounds for {}x{} SimMatrix",
            self.rows,
            self.cols
        );
        match &mut self.data {
            MatrixData::F64(v) => {
                v[r * self.cols..(r + 1) * self.cols].copy_from_slice(row);
            }
            MatrixData::F32(v) => {
                for (dst, &src) in v[r * self.cols..(r + 1) * self.cols].iter_mut().zip(row) {
                    *dst = src as f32;
                }
            }
        }
    }

    /// The best-scoring target for a source row, with its score. `None` for
    /// an empty matrix.
    pub fn best_for_source(&self, source: NodeId) -> Option<(NodeId, f64)> {
        let r = source.index();
        let base = r * self.cols;
        let (best_col, best) = (0..self.cols)
            .map(|c| self.data.at(base + c))
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(&b.1))?;
        Some((NodeId(best_col as u32), best))
    }

    /// Mean over rows of the best score in each row — a whole-matrix summary
    /// used by the flat (non-recursive) matchers.
    pub fn mean_best_per_source(&self) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        let total: f64 = (0..self.rows)
            .map(|r| {
                (0..self.cols)
                    .map(|c| self.data.at(r * self.cols + c))
                    .fold(0.0f64, f64::max)
            })
            .sum();
        total / self.rows as f64
    }

    /// Iterates `(source, target, score)` over all cells.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        (0..self.rows).flat_map(move |r| {
            (0..self.cols).map(move |c| {
                (
                    NodeId(r as u32),
                    NodeId(c as u32),
                    self.data.at(r * self.cols + c),
                )
            })
        })
    }

    /// The largest absolute cell-wise difference between two same-shaped
    /// matrices (widening both to `f64`), `0.0` for empty matrices. This is
    /// the metric of the f32 accuracy contract.
    ///
    /// # Panics
    /// If the shapes differ.
    pub fn max_abs_diff(&self, other: &SimMatrix) -> f64 {
        assert_eq!(self.rows, other.rows, "row count mismatch");
        assert_eq!(self.cols, other.cols, "col count mismatch");
        (0..self.rows * self.cols)
            .map(|i| (self.data.at(i) - other.data.at(i)).abs())
            .fold(0.0f64, f64::max)
    }

    /// Renders the matrix as CSV with label-path headers (for spreadsheet
    /// inspection or downstream analysis). Paths containing commas or quotes
    /// are quoted per RFC 4180.
    pub fn to_csv(
        &self,
        source: &qmatch_xsd::SchemaTree,
        target: &qmatch_xsd::SchemaTree,
    ) -> String {
        assert_eq!(self.rows, source.len(), "matrix rows must match source");
        assert_eq!(self.cols, target.len(), "matrix cols must match target");
        let quote = |s: &str| -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str("source\\target");
        for (tid, _) in target.iter() {
            out.push(',');
            out.push_str(&quote(&target.path_labels(tid).join("/")));
        }
        out.push('\n');
        for (sid, _) in source.iter() {
            out.push_str(&quote(&source.path_labels(sid).join("/")));
            for (tid, _) in target.iter() {
                out.push(',');
                out.push_str(&format!("{:.4}", self.get(sid, tid)));
            }
            out.push('\n');
        }
        out
    }

    /// Asserts every value lies in `[0, 1]` (debug tool for tests).
    pub fn assert_normalized(&self) {
        for i in 0..self.rows * self.cols {
            let v = self.data.at(i);
            assert!(
                (-1e-9..=1.0 + 1e-9).contains(&v),
                "cell {i} = {v} is outside [0,1]"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_get_set() {
        let mut m = SimMatrix::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.precision(), Precision::F64);
        assert_eq!(m.get(NodeId(1), NodeId(2)), 0.0);
        m.set(NodeId(1), NodeId(2), 0.75);
        assert_eq!(m.get(NodeId(1), NodeId(2)), 0.75);
        assert_eq!(m.get(NodeId(0), NodeId(2)), 0.0);
    }

    #[test]
    fn f32_storage_rounds_on_set_and_widens_on_get() {
        let mut m = SimMatrix::zeros_with(2, 2, Precision::F32);
        assert_eq!(m.precision(), Precision::F32);
        let v = 0.123_456_789_012_345_f64;
        m.set(NodeId(0), NodeId(1), v);
        let stored = m.get(NodeId(0), NodeId(1));
        assert_eq!(stored, f64::from(v as f32));
        assert!((stored - v).abs() < 1e-7);
    }

    #[test]
    fn get_panics_with_coordinates_in_release_builds() {
        let m = SimMatrix::zeros(2, 3);
        let err = std::panic::catch_unwind(|| m.get(NodeId(9), NodeId(1))).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("(9,1)"), "panic lacks coordinates: {msg}");
        assert!(msg.contains("2x3"), "panic lacks dimensions: {msg}");
    }

    #[test]
    fn try_get_and_try_set_report_bounds() {
        let mut m = SimMatrix::zeros(2, 3);
        assert_eq!(m.try_get(NodeId(0), NodeId(2)), Ok(0.0));
        let e = m.try_get(NodeId(2), NodeId(0)).unwrap_err();
        assert_eq!(
            e,
            MatrixIndexError {
                row: 2,
                col: 0,
                rows: 2,
                cols: 3
            }
        );
        assert!(e.to_string().contains("(2,0)"));
        assert!(m.try_set(NodeId(0), NodeId(5), 1.0).is_err());
        assert!(m.try_set(NodeId(1), NodeId(1), 0.5).is_ok());
        assert_eq!(m.get(NodeId(1), NodeId(1)), 0.5);
    }

    #[test]
    fn row_and_set_row_round_trip() {
        let mut m = SimMatrix::zeros(2, 3);
        m.set_row(NodeId(1), &[0.1, 0.2, 0.3]);
        assert_eq!(m.row(NodeId(1)), &[0.1, 0.2, 0.3]);
        assert_eq!(m.row(NodeId(0)), &[0.0, 0.0, 0.0]);
        assert_eq!(m.get(NodeId(1), NodeId(2)), 0.3);
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn set_row_rejects_wrong_length() {
        let mut m = SimMatrix::zeros(2, 3);
        m.set_row(NodeId(0), &[0.1, 0.2]);
    }

    #[test]
    #[should_panic(expected = "f64 storage")]
    fn row_rejects_f32_storage() {
        let m = SimMatrix::zeros_with(1, 1, Precision::F32);
        let _ = m.row(NodeId(0));
    }

    #[test]
    fn with_precision_round_trips() {
        let mut m = SimMatrix::zeros(2, 2);
        m.set(NodeId(0), NodeId(1), 0.25); // exactly representable in f32
        let f32m = m.clone().with_precision(Precision::F32);
        assert_eq!(f32m.precision(), Precision::F32);
        assert_eq!(f32m.get(NodeId(0), NodeId(1)), 0.25);
        let back = f32m.with_precision(Precision::F64);
        assert_eq!(back, m);
    }

    #[test]
    fn max_abs_diff_crosses_precisions() {
        let mut a = SimMatrix::zeros(1, 2);
        a.set(NodeId(0), NodeId(0), 0.5);
        let mut b = SimMatrix::zeros_with(1, 2, Precision::F32);
        b.set(NodeId(0), NodeId(0), 0.5);
        b.set(NodeId(0), NodeId(1), 0.125);
        assert!((a.max_abs_diff(&b) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn best_for_source_picks_max() {
        let mut m = SimMatrix::zeros(1, 4);
        m.set(NodeId(0), NodeId(1), 0.4);
        m.set(NodeId(0), NodeId(3), 0.9);
        assert_eq!(m.best_for_source(NodeId(0)), Some((NodeId(3), 0.9)));
    }

    #[test]
    fn best_for_source_on_empty_cols() {
        let m = SimMatrix::zeros(1, 0);
        assert_eq!(m.best_for_source(NodeId(0)), None);
    }

    #[test]
    fn mean_best_per_source() {
        let mut m = SimMatrix::zeros(2, 2);
        m.set(NodeId(0), NodeId(0), 1.0);
        m.set(NodeId(1), NodeId(0), 0.2);
        m.set(NodeId(1), NodeId(1), 0.6);
        assert!((m.mean_best_per_source() - 0.8).abs() < 1e-12);
        assert_eq!(SimMatrix::zeros(0, 5).mean_best_per_source(), 0.0);
    }

    #[test]
    fn iter_visits_all_cells() {
        let mut m = SimMatrix::zeros(2, 2);
        m.set(NodeId(0), NodeId(1), 0.5);
        let cells: Vec<_> = m.iter().collect();
        assert_eq!(cells.len(), 4);
        assert!(cells.contains(&(NodeId(0), NodeId(1), 0.5)));
    }

    #[test]
    fn raw_rows_write_and_read_back() {
        let mut m = SimMatrix::zeros(2, 3);
        {
            let raw = RawRows::<f64>::new(&mut m).unwrap();
            // SAFETY: single-threaded test; rows accessed uniquely.
            unsafe {
                raw.row_mut(0).copy_from_slice(&[0.1, 0.2, 0.3]);
                raw.row_mut(1)[2] = 0.9;
                assert_eq!(raw.row(0), &[0.1, 0.2, 0.3]);
            }
        }
        assert_eq!(m.get(NodeId(1), NodeId(2)), 0.9);
        assert!(RawRows::<f32>::new(&mut m).is_none());
    }

    #[test]
    fn csv_export_has_headers_and_values() {
        use qmatch_xsd::SchemaTree;
        let s = SchemaTree::from_labels("a", &[("a", None), ("x,odd", Some(0))]);
        let t = SchemaTree::from_labels("b", &[("b", None), ("y", Some(0))]);
        let mut m = SimMatrix::zeros(2, 2);
        m.set(NodeId(1), NodeId(1), 0.75);
        let csv = m.to_csv(&s, &t);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("source\\target,b,b/y"), "{csv}");
        assert!(
            lines[2].starts_with("\"a/x,odd\","),
            "comma paths are quoted: {csv}"
        );
        assert!(lines[2].ends_with("0.7500"), "{csv}");
    }

    #[test]
    fn assert_normalized_accepts_unit_range() {
        let mut m = SimMatrix::zeros(1, 2);
        m.set(NodeId(0), NodeId(0), 1.0);
        m.assert_normalized();
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn assert_normalized_rejects_out_of_range() {
        let mut m = SimMatrix::zeros(1, 1);
        m.set(NodeId(0), NodeId(0), 1.5);
        m.assert_normalized();
    }
}
