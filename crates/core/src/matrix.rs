//! Dense node-pair similarity matrix.
//!
//! Every match algorithm emits a [`SimMatrix`] with one row per source node
//! and one column per target node, values in `[0, 1]`. Mapping extraction
//! and evaluation work uniformly on this representation.

use qmatch_xsd::NodeId;

/// A dense `rows × cols` matrix of similarity scores.
#[derive(Debug, Clone, PartialEq)]
pub struct SimMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl SimMatrix {
    /// A zero-filled matrix for `rows` source nodes and `cols` target nodes.
    pub fn zeros(rows: usize, cols: usize) -> SimMatrix {
        SimMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Number of source nodes (rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of target nodes (columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    fn idx(&self, source: NodeId, target: NodeId) -> usize {
        let (r, c) = (source.index(), target.index());
        debug_assert!(
            r < self.rows && c < self.cols,
            "({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        r * self.cols + c
    }

    /// The score for a node pair.
    #[inline]
    pub fn get(&self, source: NodeId, target: NodeId) -> f64 {
        self.data[self.idx(source, target)]
    }

    /// Sets the score for a node pair.
    #[inline]
    pub fn set(&mut self, source: NodeId, target: NodeId, value: f64) {
        let i = self.idx(source, target);
        self.data[i] = value;
    }

    /// One source node's row of scores, in target-id order.
    #[inline]
    pub fn row(&self, source: NodeId) -> &[f64] {
        let r = source.index();
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Overwrites one source node's row. `row` must hold exactly one value
    /// per target node. This is how the wavefront engines commit rows that
    /// were computed out-of-place.
    #[inline]
    pub fn set_row(&mut self, source: NodeId, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "row length must equal cols");
        let r = source.index();
        self.data[r * self.cols..(r + 1) * self.cols].copy_from_slice(row);
    }

    /// The best-scoring target for a source row, with its score. `None` for
    /// an empty matrix.
    pub fn best_for_source(&self, source: NodeId) -> Option<(NodeId, f64)> {
        let r = source.index();
        let row = &self.data[r * self.cols..(r + 1) * self.cols];
        let (best_col, best) = row
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(&b.1))?;
        Some((NodeId(best_col as u32), best))
    }

    /// Mean over rows of the best score in each row — a whole-matrix summary
    /// used by the flat (non-recursive) matchers.
    pub fn mean_best_per_source(&self) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        let total: f64 = (0..self.rows)
            .map(|r| {
                self.data[r * self.cols..(r + 1) * self.cols]
                    .iter()
                    .copied()
                    .fold(0.0f64, f64::max)
            })
            .sum();
        total / self.rows as f64
    }

    /// Iterates `(source, target, score)` over all cells.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        (0..self.rows).flat_map(move |r| {
            (0..self.cols).map(move |c| {
                (
                    NodeId(r as u32),
                    NodeId(c as u32),
                    self.data[r * self.cols + c],
                )
            })
        })
    }

    /// Renders the matrix as CSV with label-path headers (for spreadsheet
    /// inspection or downstream analysis). Paths containing commas or quotes
    /// are quoted per RFC 4180.
    pub fn to_csv(
        &self,
        source: &qmatch_xsd::SchemaTree,
        target: &qmatch_xsd::SchemaTree,
    ) -> String {
        assert_eq!(self.rows, source.len(), "matrix rows must match source");
        assert_eq!(self.cols, target.len(), "matrix cols must match target");
        let quote = |s: &str| -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str("source\\target");
        for (tid, _) in target.iter() {
            out.push(',');
            out.push_str(&quote(&target.path_labels(tid).join("/")));
        }
        out.push('\n');
        for (sid, _) in source.iter() {
            out.push_str(&quote(&source.path_labels(sid).join("/")));
            for (tid, _) in target.iter() {
                out.push(',');
                out.push_str(&format!("{:.4}", self.get(sid, tid)));
            }
            out.push('\n');
        }
        out
    }

    /// Asserts every value lies in `[0, 1]` (debug tool for tests).
    pub fn assert_normalized(&self) {
        for (i, &v) in self.data.iter().enumerate() {
            assert!(
                (-1e-9..=1.0 + 1e-9).contains(&v),
                "cell {i} = {v} is outside [0,1]"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_get_set() {
        let mut m = SimMatrix::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(NodeId(1), NodeId(2)), 0.0);
        m.set(NodeId(1), NodeId(2), 0.75);
        assert_eq!(m.get(NodeId(1), NodeId(2)), 0.75);
        assert_eq!(m.get(NodeId(0), NodeId(2)), 0.0);
    }

    #[test]
    fn row_and_set_row_round_trip() {
        let mut m = SimMatrix::zeros(2, 3);
        m.set_row(NodeId(1), &[0.1, 0.2, 0.3]);
        assert_eq!(m.row(NodeId(1)), &[0.1, 0.2, 0.3]);
        assert_eq!(m.row(NodeId(0)), &[0.0, 0.0, 0.0]);
        assert_eq!(m.get(NodeId(1), NodeId(2)), 0.3);
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn set_row_rejects_wrong_length() {
        let mut m = SimMatrix::zeros(2, 3);
        m.set_row(NodeId(0), &[0.1, 0.2]);
    }

    #[test]
    fn best_for_source_picks_max() {
        let mut m = SimMatrix::zeros(1, 4);
        m.set(NodeId(0), NodeId(1), 0.4);
        m.set(NodeId(0), NodeId(3), 0.9);
        assert_eq!(m.best_for_source(NodeId(0)), Some((NodeId(3), 0.9)));
    }

    #[test]
    fn best_for_source_on_empty_cols() {
        let m = SimMatrix::zeros(1, 0);
        assert_eq!(m.best_for_source(NodeId(0)), None);
    }

    #[test]
    fn mean_best_per_source() {
        let mut m = SimMatrix::zeros(2, 2);
        m.set(NodeId(0), NodeId(0), 1.0);
        m.set(NodeId(1), NodeId(0), 0.2);
        m.set(NodeId(1), NodeId(1), 0.6);
        assert!((m.mean_best_per_source() - 0.8).abs() < 1e-12);
        assert_eq!(SimMatrix::zeros(0, 5).mean_best_per_source(), 0.0);
    }

    #[test]
    fn iter_visits_all_cells() {
        let mut m = SimMatrix::zeros(2, 2);
        m.set(NodeId(0), NodeId(1), 0.5);
        let cells: Vec<_> = m.iter().collect();
        assert_eq!(cells.len(), 4);
        assert!(cells.contains(&(NodeId(0), NodeId(1), 0.5)));
    }

    #[test]
    fn csv_export_has_headers_and_values() {
        use qmatch_xsd::SchemaTree;
        let s = SchemaTree::from_labels("a", &[("a", None), ("x,odd", Some(0))]);
        let t = SchemaTree::from_labels("b", &[("b", None), ("y", Some(0))]);
        let mut m = SimMatrix::zeros(2, 2);
        m.set(NodeId(1), NodeId(1), 0.75);
        let csv = m.to_csv(&s, &t);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("source\\target,b,b/y"), "{csv}");
        assert!(
            lines[2].starts_with("\"a/x,odd\","),
            "comma paths are quoted: {csv}"
        );
        assert!(lines[2].ends_with("0.7500"), "{csv}");
    }

    #[test]
    fn assert_normalized_accepts_unit_range() {
        let mut m = SimMatrix::zeros(1, 2);
        m.set(NodeId(0), NodeId(0), 1.0);
        m.assert_normalized();
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn assert_normalized_rejects_out_of_range() {
        let mut m = SimMatrix::zeros(1, 1);
        m.set(NodeId(0), NodeId(0), 1.5);
        m.assert_normalized();
    }
}
