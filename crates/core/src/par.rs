//! Parallel-execution helpers built on scoped threads.
//!
//! The matching engines fan work out in *waves* of independent rows (see
//! DESIGN.md); this module provides the small, dependency-free map primitive
//! they share. With the `parallel` feature disabled (or a single available
//! core) everything degenerates to a plain sequential loop, so the two build
//! flavours run exactly the same per-cell arithmetic — the parallel and
//! sequential engines are bit-identical by construction.

/// Number of worker threads the parallel engines use: the `QMATCH_THREADS`
/// environment variable when set (clamped to at least 1), otherwise the
/// machine's available parallelism. Always 1 without the `parallel` feature.
pub fn num_threads() -> usize {
    if !cfg!(feature = "parallel") {
        return 1;
    }
    if let Ok(v) = std::env::var("QMATCH_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Minimum number of similarity cells (`rows × cols`) before an engine
/// bothers spawning threads. Below this, thread startup dominates the work
/// of a whole match — the weight-sweep drivers run thousands of matches on
/// 6-node trees and must not pay a fork/join per wave.
pub const PAR_CELL_THRESHOLD: usize = 256;

/// Maps `f` over `0..n`, in parallel when `parallel` is true (and the build
/// and machine support it), preserving index order. `f` must be a pure
/// function of its index for the parallel and sequential paths to agree —
/// every caller in this crate satisfies that by writing rows out-of-place.
pub(crate) fn map_rows<T, F>(n: usize, parallel: bool, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = if parallel { num_threads().min(n) } else { 1 };
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    parallel_map(n, threads, &f)
}

#[cfg(feature = "parallel")]
fn parallel_map<T, F>(n: usize, threads: usize, f: &F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    // Contiguous chunks, one per worker; results are concatenated in
    // chunk order so the output is index-ordered regardless of scheduling.
    let chunk = n.div_ceil(threads);
    let mut out = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n);
                scope.spawn(move || (lo..hi).map(f).collect::<Vec<T>>())
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("qmatch worker thread panicked"));
        }
    });
    out
}

#[cfg(not(feature = "parallel"))]
fn parallel_map<T, F>(n: usize, _threads: usize, f: &F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    (0..n).map(f).collect()
}

/// Runs `f` over `0..n` for side effects, giving each worker thread one
/// state value built by `init` (scratch buffers, per-thread counters). The
/// per-thread states are returned after the join so the caller can fold
/// counters and recycle buffers — no atomics in the row loop.
///
/// `f` must write its results out-of-band (e.g. into disjoint matrix rows):
/// unlike [`map_rows`] nothing is collected per index, which is what lets
/// the wavefront kernels write rows in place without a per-row `Vec`.
pub(crate) fn for_rows_with<S, I, F>(n: usize, parallel: bool, init: I, f: F) -> Vec<S>
where
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) + Sync,
{
    let threads = if parallel { num_threads().min(n) } else { 1 };
    if threads <= 1 || !cfg!(feature = "parallel") {
        let mut state = init();
        for i in 0..n {
            f(&mut state, i);
        }
        return vec![state];
    }
    parallel_for_with(n, threads, &init, &f)
}

#[cfg(feature = "parallel")]
fn parallel_for_with<S, I, F>(n: usize, threads: usize, init: &I, f: &F) -> Vec<S>
where
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) + Sync,
{
    // Same contiguous-chunk split as `parallel_map`: one worker per chunk,
    // states returned in chunk order.
    let chunk = n.div_ceil(threads);
    let mut states = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n);
                scope.spawn(move || {
                    let mut state = init();
                    for i in lo..hi {
                        f(&mut state, i);
                    }
                    state
                })
            })
            .collect();
        for handle in handles {
            states.push(handle.join().expect("qmatch worker thread panicked"));
        }
    });
    states
}

#[cfg(not(feature = "parallel"))]
fn parallel_for_with<S, I, F>(n: usize, _threads: usize, init: &I, f: &F) -> Vec<S>
where
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) + Sync,
{
    let mut state = init();
    for i in 0..n {
        f(&mut state, i);
    }
    vec![state]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_rows_preserves_order_sequentially() {
        let out = map_rows(10, false, |i| i * i);
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
    }

    #[test]
    fn map_rows_preserves_order_in_parallel() {
        // Forces the threaded path even on a single-core machine.
        std::env::set_var("QMATCH_THREADS", "4");
        let out = map_rows(1000, true, |i| i as u64 * 3);
        std::env::remove_var("QMATCH_THREADS");
        assert_eq!(out, (0..1000u64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn map_rows_handles_empty_and_single() {
        assert_eq!(map_rows(0, true, |i| i), Vec::<usize>::new());
        assert_eq!(map_rows(1, true, |i| i + 7), vec![7]);
    }

    #[test]
    fn num_threads_is_at_least_one() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn for_rows_with_covers_every_index_once() {
        use std::sync::atomic::{AtomicU64, Ordering};
        std::env::set_var("QMATCH_THREADS", "4");
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        let states = for_rows_with(
            1000,
            true,
            || 0u64,
            |count, i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
                *count += i as u64;
            },
        );
        std::env::remove_var("QMATCH_THREADS");
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        // The per-thread counters together saw every index exactly once.
        assert_eq!(states.iter().sum::<u64>(), (0..1000u64).sum());
        if cfg!(feature = "parallel") {
            assert!(states.len() > 1, "threaded path produced one state each");
        } else {
            assert_eq!(states.len(), 1, "sequential build keeps one state");
        }
    }

    #[test]
    fn for_rows_with_sequential_returns_single_state() {
        let states = for_rows_with(5, false, Vec::new, |v: &mut Vec<usize>, i| v.push(i));
        assert_eq!(states, vec![vec![0, 1, 2, 3, 4]]);
    }
}
