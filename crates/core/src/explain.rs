//! Human-readable explanation of a node-pair QoM: the per-axis scores and
//! grades, the children-axis decomposition (Rw, Rs, per-child best matches),
//! the weighted total, and the qualitative taxonomy category. This is the
//! paper's §2/§3 machinery surfaced for inspection — what a match UI would
//! show when the user asks "why did these two match (or not)?".

use crate::matrix::SimMatrix;
use crate::model::{children_qom, MatchConfig};
use crate::props::compare_properties;
use crate::taxonomy::{AxisGrade, CoverageGrade, MatchCategory};
use qmatch_lexicon::name_match::LabelGrade;
use qmatch_xsd::{NodeId, SchemaTree};
use std::fmt;

/// One atomic axis of the explanation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AxisExplanation {
    /// Numeric score in `[0, 1]`.
    pub score: f64,
    /// Qualitative grade.
    pub grade: AxisGrade,
    /// The weight applied (from the config).
    pub weight: f64,
}

impl AxisExplanation {
    /// The axis's contribution to the total QoM.
    pub fn contribution(&self) -> f64 {
        self.score * self.weight
    }
}

/// One source child's best target-child match in the children axis.
#[derive(Debug, Clone, PartialEq)]
pub struct ChildMatch {
    /// The source child's label.
    pub source_label: String,
    /// The best-matching target child's label (None when the target node
    /// has no children).
    pub target_label: Option<String>,
    /// The best QoM among the target children.
    pub best_qom: f64,
    /// Whether it cleared the child-match threshold and contributed.
    pub kept: bool,
}

/// The children-axis decomposition (Equations 3–5).
#[derive(Debug, Clone, PartialEq)]
pub struct ChildrenExplanation {
    /// Per-source-child best matches.
    pub children: Vec<ChildMatch>,
    /// Subtree weight `Rw` (Eq. 3).
    pub rw: f64,
    /// Cardinality ratio `Rs` (Eq. 4).
    pub rs: f64,
    /// `QoMC = (Rw + Rs) / 2` (Eq. 5); 1.0 for leaf–leaf pairs by default.
    pub qomc: f64,
    /// Coverage grade for the taxonomy.
    pub coverage: CoverageGrade,
}

/// A full explanation of one node pair under the hybrid model.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// Source node's label path.
    pub source_path: String,
    /// Target node's label path.
    pub target_path: String,
    /// Label axis.
    pub label: AxisExplanation,
    /// Properties axis.
    pub properties: AxisExplanation,
    /// Level axis.
    pub level: AxisExplanation,
    /// Children axis (weight included in `children_axis`).
    pub children_axis: AxisExplanation,
    /// The children decomposition behind `children_axis.score`.
    pub children: ChildrenExplanation,
    /// The weighted total (equals the hybrid matrix cell).
    pub qom: f64,
    /// The §2.2 taxonomy category of the pair.
    pub category: MatchCategory,
}

/// Explains the pair `(s, t)` under the hybrid model. Runs a full hybrid
/// match internally (the children axis needs the recursive matrix).
pub fn explain_pair(
    source: &SchemaTree,
    target: &SchemaTree,
    s: NodeId,
    t: NodeId,
    config: &MatchConfig,
) -> Explanation {
    let session = crate::session::MatchSession::new(*config);
    let (sp, tp) = (session.prepare(source), session.prepare(target));
    let outcome = session.hybrid(&sp, &tp);
    explain_with_matrix(source, target, s, t, config, &outcome.matrix)
}

/// Explains a pair against an already-computed hybrid matrix (cheap; use
/// this when explaining several pairs of the same match run).
pub fn explain_with_matrix(
    source: &SchemaTree,
    target: &SchemaTree,
    s: NodeId,
    t: NodeId,
    config: &MatchConfig,
    matrix: &SimMatrix,
) -> Explanation {
    // One pair is explained at a time, so compare the two labels directly
    // rather than precomputing the full label matrix.
    let (sn, tn) = (source.node(s), target.node(t));
    let matcher = crate::algorithms::matcher_for_mode(config.lexicon);
    let name =
        crate::algorithms::compare_single_labels(&sn.label, &tn.label, config.lexicon, &matcher);
    explain_with_label(source, target, s, t, config, matrix, name)
}

/// The explanation with the label comparison supplied by the caller — the
/// session path serves it from its cross-schema cache.
pub(crate) fn explain_with_label(
    source: &SchemaTree,
    target: &SchemaTree,
    s: NodeId,
    t: NodeId,
    config: &MatchConfig,
    matrix: &SimMatrix,
    name: qmatch_lexicon::name_match::NameMatch,
) -> Explanation {
    let weights = config.weights;
    let (sn, tn) = (source.node(s), target.node(t));

    let label = AxisExplanation {
        score: name.score,
        grade: match name.grade {
            LabelGrade::Exact => AxisGrade::Exact,
            LabelGrade::Relaxed => AxisGrade::Relaxed,
            LabelGrade::None => AxisGrade::None,
        },
        weight: weights.label,
    };

    let props = compare_properties(&sn.properties, &tn.properties);
    let properties = AxisExplanation {
        score: props.score,
        grade: props.grade,
        weight: weights.properties,
    };

    let leaf_pair = sn.is_leaf() && tn.is_leaf();
    let level_exact = leaf_pair || sn.level == tn.level;
    let level = AxisExplanation {
        score: if level_exact { 1.0 } else { 0.0 },
        // §2.1: for the level axis, relaxed is synonymous with no match.
        grade: if level_exact {
            AxisGrade::Exact
        } else {
            AxisGrade::Relaxed
        },
        weight: weights.level,
    };

    // Children decomposition, mirroring the hybrid's best-per-source-child.
    let mut children = Vec::with_capacity(sn.children.len());
    let mut qom_sum = 0.0;
    let mut matched = 0usize;
    let mut any_relaxed = false;
    for &cs in &sn.children {
        let best = tn
            .children
            .iter()
            .map(|&ct| (ct, matrix.get(cs, ct)))
            .max_by(|a, b| a.1.total_cmp(&b.1));
        let (target_label, best_qom) = match best {
            Some((ct, v)) => (Some(target.node(ct).label.clone()), v),
            None => (None, 0.0),
        };
        let kept = best_qom >= config.threshold;
        if kept {
            qom_sum += best_qom;
            matched += 1;
            if best_qom < 0.999 {
                any_relaxed = true;
            }
        }
        children.push(ChildMatch {
            source_label: source.node(cs).label.clone(),
            target_label,
            best_qom,
            kept,
        });
    }
    let total = sn.children.len();
    let (rw, rs, qomc) = if leaf_pair {
        (1.0, 1.0, 1.0)
    } else if sn.is_leaf() != tn.is_leaf() {
        (0.0, 0.0, 0.0)
    } else {
        let n = total as f64;
        (
            qom_sum / n,
            matched as f64 / n,
            children_qom(qom_sum, matched, total),
        )
    };
    let coverage = CoverageGrade::classify(total, matched, any_relaxed);
    let children_axis = AxisExplanation {
        score: qomc,
        grade: coverage_to_axis(coverage),
        weight: weights.children,
    };

    let qom = matrix.get(s, t);
    let category = MatchCategory::combine(label.grade, properties.grade, level.grade, coverage);

    Explanation {
        source_path: source.path_labels(s).join("/"),
        target_path: target.path_labels(t).join("/"),
        label,
        properties,
        level,
        children_axis,
        children: ChildrenExplanation {
            children,
            rw,
            rs,
            qomc,
            coverage,
        },
        qom,
        category,
    }
}

fn coverage_to_axis(coverage: CoverageGrade) -> AxisGrade {
    match coverage {
        CoverageGrade::TotalExact => AxisGrade::Exact,
        CoverageGrade::None => AxisGrade::None,
        _ => AxisGrade::Relaxed,
    }
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}  vs  {}", self.source_path, self.target_path)?;
        writeln!(f, "  QoM = {:.3}   category: {}", self.qom, self.category)?;
        let axis = |f: &mut fmt::Formatter<'_>, name: &str, a: &AxisExplanation| {
            writeln!(
                f,
                "  {name:<10} score {:.3} × weight {:.2} = {:.3}   ({})",
                a.score,
                a.weight,
                a.contribution(),
                a.grade
            )
        };
        axis(f, "label", &self.label)?;
        axis(f, "properties", &self.properties)?;
        axis(f, "level", &self.level)?;
        axis(f, "children", &self.children_axis)?;
        if !self.children.children.is_empty() {
            writeln!(
                f,
                "  children axis: Rw {:.3}, Rs {:.3}, coverage {}",
                self.children.rw, self.children.rs, self.children.coverage
            )?;
            for c in &self.children.children {
                writeln!(
                    f,
                    "    {} -> {}  ({:.3}{})",
                    c.source_label,
                    c.target_label.as_deref().unwrap_or("∅"),
                    c.best_qom,
                    if c.kept { "" } else { ", below threshold" }
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the one-shot wrappers stay covered until removal
    use super::*;
    use crate::algorithms::hybrid_match;

    fn po_trees() -> (SchemaTree, SchemaTree) {
        let source = SchemaTree::from_labels(
            "PO",
            &[
                ("PO", None),
                ("OrderNo", Some(0)),
                ("Quantity", Some(0)),
                ("UnitOfMeasure", Some(0)),
            ],
        );
        let target = SchemaTree::from_labels(
            "PurchaseOrder",
            &[
                ("PurchaseOrder", None),
                ("OrderNo", Some(0)),
                ("Qty", Some(0)),
                ("UOM", Some(0)),
            ],
        );
        (source, target)
    }

    #[test]
    fn explanation_total_matches_the_matrix_cell() {
        let (s, t) = po_trees();
        let config = MatchConfig::default();
        let outcome = hybrid_match(&s, &t, &config);
        for (sid, _) in s.iter() {
            for (tid, _) in t.iter() {
                let e = explain_with_matrix(&s, &t, sid, tid, &config, &outcome.matrix);
                assert!(
                    (e.qom - outcome.matrix.get(sid, tid)).abs() < 1e-12,
                    "{} vs {}",
                    e.source_path,
                    e.target_path
                );
                // The axis contributions must reconstruct the QoM.
                let reconstructed = e.label.contribution()
                    + e.properties.contribution()
                    + e.level.contribution()
                    + e.children_axis.contribution();
                assert!((reconstructed - e.qom).abs() < 1e-9, "{e}");
            }
        }
    }

    #[test]
    fn root_pair_explanation_reads_sensibly() {
        let (s, t) = po_trees();
        let e = explain_pair(&s, &t, s.root_id(), t.root_id(), &MatchConfig::default());
        assert_eq!(e.source_path, "PO");
        assert_eq!(e.target_path, "PurchaseOrder");
        assert_eq!(e.children.children.len(), 3);
        assert!(
            e.children.children.iter().all(|c| c.kept),
            "all PO children match"
        );
        assert_eq!(e.children.coverage, CoverageGrade::TotalRelaxed);
        assert_eq!(e.category, MatchCategory::TotalRelaxed);
        let text = e.to_string();
        assert!(text.contains("category: total relaxed"), "{text}");
        assert!(text.contains("OrderNo -> OrderNo"), "{text}");
        assert!(text.contains("Rw"), "{text}");
    }

    #[test]
    fn leaf_pair_has_default_exact_children_and_level() {
        let (s, t) = po_trees();
        let e = explain_pair(
            &s,
            &t,
            s.find_by_label("OrderNo").unwrap(),
            t.find_by_label("OrderNo").unwrap(),
            &MatchConfig::default(),
        );
        assert_eq!(e.children.qomc, 1.0);
        assert_eq!(e.level.score, 1.0);
        assert_eq!(e.category, MatchCategory::TotalExact);
        assert!((e.qom - 1.0).abs() < 1e-9);
    }

    #[test]
    fn leaf_vs_subtree_gets_zero_children() {
        let (s, t) = po_trees();
        let e = explain_pair(
            &s,
            &t,
            s.find_by_label("OrderNo").unwrap(),
            t.root_id(),
            &MatchConfig::default(),
        );
        assert_eq!(e.children.qomc, 0.0);
        assert_eq!(e.children_axis.contribution(), 0.0);
    }

    #[test]
    fn below_threshold_children_are_flagged() {
        let s = SchemaTree::from_labels("r", &[("r", None), ("zebra", Some(0))]);
        let t = SchemaTree::from_labels("r", &[("r", None), ("quark", Some(0))]);
        let e = explain_pair(&s, &t, s.root_id(), t.root_id(), &MatchConfig::default());
        let text = e.to_string();
        // zebra/quark: unrelated labels but same shape — the leaf pair
        // scores 0.7 (props + C), which clears the 0.5 default threshold.
        assert_eq!(e.children.children.len(), 1);
        let strict = MatchConfig {
            threshold: 0.9,
            ..MatchConfig::default()
        };
        let e2 = explain_pair(&s, &t, s.root_id(), t.root_id(), &strict);
        assert!(!e2.children.children[0].kept);
        assert!(e2.to_string().contains("below threshold"), "{text}");
    }
}
