//! Golden span-sequence tests over the paper's worked example (the
//! Figure 1 `PO` schema matched against the `PurchaseOrder` schema).
//!
//! The trace contract these tests pin down:
//!
//! - spans are recorded once per phase by the coordinating thread, so the
//!   sequence is *deterministic* — identical between the parallel and
//!   sequential engines, and identical across repeated runs;
//! - the wave spans follow the bottom-up wavefront exactly (one span per
//!   height class, rows = nodes in the wave, cells = rows × target size),
//!   re-derived here from the tree structure independently of the engine;
//! - tracing only observes: a recorder-attached match is bit-identical to
//!   a sink-free match.

use qmatch_core::algorithms::Algorithm;
use qmatch_core::model::MatchConfig;
use qmatch_core::session::MatchSession;
use qmatch_core::trace::{Phase, Recorder, Span};
use qmatch_xsd::{parse_schema, SchemaTree};
use std::sync::Arc;

/// The paper's Figure 1 `PO` schema (10 elements, max depth 3).
const PO_XSD: &str = r#"<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="PO">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="OrderNo" type="xs:integer"/>
        <xs:element name="PurchaseInfo">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="BillingAddr" type="xs:string"/>
              <xs:element name="ShippingAddr" type="xs:string"/>
              <xs:element name="Lines">
                <xs:complexType>
                  <xs:sequence>
                    <xs:element name="Item" type="xs:string"/>
                    <xs:element name="Quantity" type="xs:positiveInteger"/>
                    <xs:element name="UnitOfMeasure" type="xs:string"/>
                  </xs:sequence>
                </xs:complexType>
              </xs:element>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
        <xs:element name="PurchaseDate" type="xs:date"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>"#;

/// The second purchase-order schema of the worked example (9 elements).
const PURCHASE_ORDER_XSD: &str = r#"<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="PurchaseOrder">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="OrderNo" type="xs:integer"/>
        <xs:element name="Date" type="xs:date"/>
        <xs:element name="BillTo" type="xs:string"/>
        <xs:element name="ShipTo" type="xs:string"/>
        <xs:element name="Items">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="Item" maxOccurs="unbounded">
                <xs:complexType>
                  <xs:sequence>
                    <xs:element name="Qty" type="xs:positiveInteger"/>
                    <xs:element name="UOM" type="xs:string"/>
                  </xs:sequence>
                </xs:complexType>
              </xs:element>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>"#;

fn compile(src: &str) -> SchemaTree {
    SchemaTree::compile(&parse_schema(src).expect("parses")).expect("compiles")
}

/// Height of every node (leaves 0, parents 1 + max child height) — an
/// engine-independent re-derivation of the wavefront schedule.
fn heights(tree: &SchemaTree) -> Vec<u32> {
    let mut h = vec![0u32; tree.len()];
    // Children always follow their parent in the tree's storage order, so
    // one reverse pass settles every node.
    let nodes: Vec<_> = tree.iter().collect();
    for (id, node) in nodes.into_iter().rev() {
        h[id.index()] = node
            .children
            .iter()
            .map(|c| h[c.index()] + 1)
            .max()
            .unwrap_or(0);
    }
    h
}

/// The timing-free part of a span — what must be deterministic.
fn shape(span: &Span) -> (Phase, u32, u64, u64, u64, u64, u64) {
    (
        span.phase,
        span.wave,
        span.rows,
        span.cells,
        span.skipped,
        span.cache_hits,
        span.cache_misses,
    )
}

fn traced_hybrid(sequential: bool) -> (Vec<Span>, qmatch_core::algorithms::MatchOutcome) {
    let recorder = Arc::new(Recorder::default());
    let mut session = MatchSession::new(MatchConfig::default());
    session.set_trace_sink(recorder.clone());
    let (source, target) = (compile(PO_XSD), compile(PURCHASE_ORDER_XSD));
    let (sp, tp) = (session.prepare(&source), session.prepare(&target));
    let outcome = if sequential {
        session.hybrid_sequential(&sp, &tp)
    } else {
        session.hybrid(&sp, &tp)
    };
    (recorder.spans(), outcome)
}

#[test]
fn hybrid_span_sequence_matches_the_wavefront_golden() {
    let (source, target) = (compile(PO_XSD), compile(PURCHASE_ORDER_XSD));
    let (spans, _) = traced_hybrid(false);

    // Golden sequence: prepare(source), prepare(target), one label-matrix
    // build, one matrix/table acquisition, then exactly one wave per height
    // class, bottom-up.
    let h = heights(&source);
    let max_height = *h.iter().max().unwrap();
    let phases: Vec<Phase> = spans.iter().map(|s| s.phase).collect();
    let mut expected = vec![Phase::Prepare, Phase::Prepare, Phase::Labels, Phase::Alloc];
    expected.extend(vec![Phase::HybridWave; max_height as usize + 1]);
    assert_eq!(phases, expected);

    // The prepare spans carry the tree sizes.
    assert_eq!(spans[0].rows, source.len() as u64);
    assert_eq!(spans[1].rows, target.len() as u64);

    // A fresh session's label build has no prior cache: every distinct
    // label pair misses, and hits + misses cover the whole matrix.
    let labels = &spans[2];
    assert_eq!(labels.rows, source.len() as u64);
    assert_eq!(labels.cells, (source.len() * target.len()) as u64);
    assert_eq!(labels.cache_hits + labels.cache_misses, labels.cells);
    assert!(labels.cache_misses > 0);

    // The Alloc span accounts for the whole output matrix.
    let alloc = &spans[3];
    assert_eq!(alloc.rows, source.len() as u64);
    assert_eq!(alloc.cells, (source.len() * target.len()) as u64);

    // Wave w covers exactly the source nodes of height w.
    for (w, span) in spans[4..].iter().enumerate() {
        assert_eq!(span.wave, w as u32);
        let in_wave = h.iter().filter(|&&x| x == w as u32).count() as u64;
        assert_eq!(span.rows, in_wave, "wave {w} rows");
        assert_eq!(span.cells, in_wave * target.len() as u64, "wave {w} cells");
    }
    // Waves partition the source tree.
    let total_rows: u64 = spans[4..].iter().map(|s| s.rows).sum();
    assert_eq!(total_rows, source.len() as u64);
}

#[test]
fn span_sequence_is_identical_across_parallel_and_sequential_builds() {
    let (par_spans, par_outcome) = traced_hybrid(false);
    let (seq_spans, seq_outcome) = traced_hybrid(true);
    let par: Vec<_> = par_spans.iter().map(shape).collect();
    let seq: Vec<_> = seq_spans.iter().map(shape).collect();
    assert_eq!(par, seq, "span shapes must not depend on the engine");
    assert_eq!(par_outcome.matrix, seq_outcome.matrix);

    // Determinism across repeated runs, too.
    let (again, _) = traced_hybrid(false);
    assert_eq!(par, again.iter().map(shape).collect::<Vec<_>>());
}

#[test]
fn tracing_never_perturbs_scores() {
    let (source, target) = (compile(PO_XSD), compile(PURCHASE_ORDER_XSD));

    let plain = MatchSession::new(MatchConfig::default());
    let (sp, tp) = (plain.prepare(&source), plain.prepare(&target));
    let baseline = plain.hybrid(&sp, &tp);

    let (_, traced) = traced_hybrid(false);
    assert_eq!(
        baseline.matrix, traced.matrix,
        "bit-identical under tracing"
    );
    assert_eq!(baseline.total_qom.to_bits(), traced.total_qom.to_bits());
}

#[test]
fn run_and_select_emit_their_phases() {
    let recorder = Arc::new(Recorder::default());
    let mut session = MatchSession::new(MatchConfig::default());
    session.set_trace_sink(recorder.clone());
    let (source, target) = (compile(PO_XSD), compile(PURCHASE_ORDER_XSD));
    let (sp, tp) = (session.prepare(&source), session.prepare(&target));

    let outcome = session
        .run(&Algorithm::Structural, &sp, &tp)
        .expect("structural is infallible");
    let mapping = session.select_mapping(&outcome.matrix, 0.5);
    assert!(mapping.len() <= source.len());

    let stats = |p| recorder.phase_stats(p);
    assert!(stats(Phase::StructuralWave).count > 0);
    assert!(stats(Phase::ContextWave).count > 0);
    assert_eq!(stats(Phase::Select).count, 1);
    assert_eq!(stats(Phase::HybridWave).count, 0);

    // A repeat label build over the same prepared pair is served from the
    // session cache: all hits, no misses.
    session.hybrid(&sp, &tp);
    recorder.reset();
    session.hybrid(&sp, &tp);
    let labels = stats(Phase::Labels);
    assert_eq!(labels.count, 1);
    assert_eq!(labels.cache_misses, 0);
    assert_eq!(labels.cache_hits, labels.cells);
}
