//! Exactness contracts of the banded DP kernel (DESIGN.md §14).
//!
//! The hybrid engine restructures Figure 3's recursion — distinct-pair score
//! tables, a band scatter over target parents, label-upper-bound and
//! cross-kind prefilters, arena-recycled buffers, and optional `f32`
//! storage. None of that may change what the default path computes:
//!
//! - the banded/pruned kernel is **bit-identical** to a naive in-test
//!   transcription of the paper recursion, at every threshold (pruning is
//!   provably lossless, not approximate);
//! - a warm arena (recycled, stale buffers) matches a cold one bit for bit;
//! - opt-in `Precision::F32` stays within 1e-6 of the `f64` scores and
//!   extracts the identical mapping on every corpus pair tested.

use qmatch_core::algorithms::Algorithm;
use qmatch_core::mapping::extract_mapping;
use qmatch_core::matrix::{Precision, SimMatrix};
use qmatch_core::model::{children_qom, MatchConfig, Weights};
use qmatch_core::props::compare_properties;
use qmatch_core::session::MatchSession;
use qmatch_core::trace::{Phase, Recorder};
use qmatch_core::LabelMatrix;
use qmatch_prng::SmallRng;
use qmatch_xsd::{NodeId, SchemaTree};
use std::sync::Arc;

/// Random tree in the same style as the parallel-equivalence suite: a small
/// vocabulary (so labels collide and the lexicon has synonyms to find) mixed
/// with unique names, random parents, up to `max_nodes` nodes.
fn random_tree(rng: &mut SmallRng, max_nodes: usize) -> SchemaTree {
    const VOCAB: [&str; 8] = [
        "order", "item", "quantity", "price", "customer", "address", "date", "number",
    ];
    let n = rng.gen_range(2..=max_nodes.max(2));
    let mut labels: Vec<(String, Option<usize>)> = vec![("root".to_string(), None)];
    for i in 1..n {
        let label = if rng.gen_bool(0.7) {
            VOCAB[rng.gen_range(0..VOCAB.len())].to_string()
        } else {
            format!("n{}", rng.gen_range(0..1000u32))
        };
        labels.push((label, Some(rng.gen_range(0..i))));
    }
    let borrowed: Vec<(&str, Option<usize>)> =
        labels.iter().map(|(l, p)| (l.as_str(), *p)).collect();
    SchemaTree::from_labels("root", &borrowed)
}

/// A naive, unpruned, cell-at-a-time transcription of the Figure 3
/// recursion — the reference the production kernel must reproduce bit for
/// bit. Child sums accumulate in source-child order, exactly as specified.
fn reference_hybrid(source: &SchemaTree, target: &SchemaTree, config: &MatchConfig) -> SimMatrix {
    let labels = LabelMatrix::new(source, target, config.lexicon);
    let w = config.weights;
    let mut matrix = SimMatrix::zeros(source.len(), target.len());
    // Children follow their parents in storage order, so reverse id order
    // visits every child before its parent (bottom-up).
    for si in (0..source.len() as u32).rev() {
        let s = NodeId(si);
        let sn = source.node(s);
        let s_leaf = sn.children.is_empty();
        for ti in 0..target.len() as u32 {
            let t = NodeId(ti);
            let tn = target.node(t);
            let t_leaf = tn.children.is_empty();
            let l = labels.get(s, t).score;
            let p = compare_properties(&sn.properties, &tn.properties).score;
            let v = if s_leaf && t_leaf {
                w.leaf_qom(l, p)
            } else {
                let mut qom_sum = 0.0f64;
                let mut matched = 0usize;
                for &cs in &sn.children {
                    let best = tn
                        .children
                        .iter()
                        .map(|&ct| matrix.get(cs, ct))
                        .fold(0.0f64, f64::max);
                    if best >= config.threshold {
                        qom_sum += best;
                        matched += 1;
                    }
                }
                let qomc = if s_leaf != t_leaf {
                    0.0
                } else {
                    children_qom(qom_sum, matched, sn.children.len())
                };
                let qomh = if sn.level == tn.level { 1.0 } else { 0.0 };
                w.qom(l, p, qomh, qomc)
            };
            matrix.set(s, t, v);
        }
    }
    matrix
}

fn session_hybrid(source: &SchemaTree, target: &SchemaTree, config: &MatchConfig) -> SimMatrix {
    let session = MatchSession::new(*config);
    let (sp, tp) = (session.prepare(source), session.prepare(target));
    session
        .run(&Algorithm::Hybrid, &sp, &tp)
        .expect("hybrid is infallible")
        .matrix
}

#[test]
fn banded_kernel_is_bit_identical_to_the_reference_recursion() {
    // The thresholds sweep the prefilters from fully inert (0.0 keeps every
    // child pair) to aggressive (0.99 engages both the full-row and the
    // cross-kind prune on most label pairs).
    let mut rng = SmallRng::seed_from_u64(0x9a41);
    for case in 0..24 {
        let source = random_tree(&mut rng, 40);
        let target = random_tree(&mut rng, 40);
        for threshold in [0.0, 0.5, 0.9, 0.99] {
            let config = MatchConfig {
                threshold,
                ..MatchConfig::default()
            };
            let expected = reference_hybrid(&source, &target, &config);
            let got = session_hybrid(&source, &target, &config);
            assert_eq!(
                got, expected,
                "case {case}, threshold {threshold}: banded kernel diverged"
            );
        }
    }
}

#[test]
fn pruning_stays_exact_under_extreme_weights() {
    // All weight on one axis stresses the upper bounds: label-only makes the
    // label bound tight, children-only makes it vacuous.
    let mut rng = SmallRng::seed_from_u64(0x517e);
    let weightings = [
        Weights::new(1.0, 0.0, 0.0, 0.0).unwrap(),
        Weights::new(0.0, 0.0, 0.0, 1.0).unwrap(),
        Weights::new(0.5, 0.1, 0.1, 0.3).unwrap(),
    ];
    for weights in weightings {
        let source = random_tree(&mut rng, 30);
        let target = random_tree(&mut rng, 30);
        for threshold in [0.5, 0.95] {
            let config = MatchConfig {
                weights,
                threshold,
                ..MatchConfig::default()
            };
            let expected = reference_hybrid(&source, &target, &config);
            let got = session_hybrid(&source, &target, &config);
            assert_eq!(got, expected, "weights {weights:?}, threshold {threshold}");
        }
    }
}

#[test]
fn high_threshold_actually_skips_cells() {
    // Observability check: on label-disparate schemas a strict threshold
    // must engage the prefilters (trace spans count the skipped cells) —
    // and the matrices above proved doing so loses nothing.
    let source = SchemaTree::from_labels(
        "alpha",
        &[
            ("alpha", None),
            ("beta", Some(0)),
            ("gamma", Some(1)),
            ("delta", Some(1)),
        ],
    );
    let target = SchemaTree::from_labels(
        "omega",
        &[
            ("omega", None),
            ("psi", Some(0)),
            ("chi", Some(1)),
            ("phi", Some(1)),
        ],
    );
    let recorder = Arc::new(Recorder::default());
    let mut session = MatchSession::new(MatchConfig {
        threshold: 0.95,
        ..MatchConfig::default()
    });
    session.set_trace_sink(recorder.clone());
    let (sp, tp) = (session.prepare(&source), session.prepare(&target));
    session.hybrid(&sp, &tp);
    assert!(
        recorder.phase_stats(Phase::HybridWave).skipped > 0,
        "strict threshold on disjoint labels must skip cells"
    );
}

#[test]
fn warm_arena_is_bit_identical_to_cold() {
    // One long-lived session recycles every outcome back into its arena, so
    // later matches run on *stale* (non-zeroed) buffers; a fresh session per
    // pair never reuses anything. The matrices must agree bit for bit.
    let mut rng = SmallRng::seed_from_u64(0xa3e1);
    let pairs: Vec<(SchemaTree, SchemaTree)> = (0..12)
        .map(|_| (random_tree(&mut rng, 35), random_tree(&mut rng, 35)))
        .collect();
    let config = MatchConfig::default();
    let warm = MatchSession::new(config);
    for (source, target) in &pairs {
        let (sp, tp) = (warm.prepare(source), warm.prepare(target));
        let outcome = warm.hybrid(&sp, &tp);

        let cold = MatchSession::new(config);
        let (cs, ct) = (cold.prepare(source), cold.prepare(target));
        let fresh = cold.hybrid(&cs, &ct);

        assert_eq!(outcome.matrix, fresh.matrix, "warm arena changed scores");
        assert_eq!(outcome.total_qom.to_bits(), fresh.total_qom.to_bits());
        warm.recycle(outcome);
    }
    let stats = warm.arena_stats();
    assert!(
        stats.matrix_reuses > 0,
        "recycling must actually reuse buffers: {stats:?}"
    );
}

#[test]
fn f32_scores_stay_within_tolerance_and_extract_the_same_mapping() {
    let mut rng = SmallRng::seed_from_u64(0x5eed);
    let config = MatchConfig::default();
    let session = MatchSession::new(config);
    let f32_session = MatchSession::new(MatchConfig {
        precision: Precision::F32,
        ..config
    });
    for case in 0..16 {
        let source = random_tree(&mut rng, 40);
        let target = random_tree(&mut rng, 40);
        let (sp, tp) = (session.prepare(&source), session.prepare(&target));
        let exact = session.hybrid(&sp, &tp);
        let (fp, gp) = (f32_session.prepare(&source), f32_session.prepare(&target));
        let lean = f32_session.hybrid(&fp, &gp);

        assert_eq!(lean.matrix.precision(), Precision::F32);
        let diff = exact.matrix.max_abs_diff(&lean.matrix);
        assert!(diff <= 1e-6, "case {case}: f32 drifted by {diff}");
        assert!((exact.total_qom - lean.total_qom).abs() <= 1e-6);

        // The extracted correspondences must be the same pairs. (Scores may
        // differ in the last bits; order of equal-score ties is pinned by
        // the deterministic (score, source, target) sort on both sides.)
        let accept = config.weights.acceptance_threshold();
        let expected: Vec<(NodeId, NodeId)> = extract_mapping(&exact.matrix, accept)
            .pairs
            .iter()
            .map(|c| (c.source, c.target))
            .collect();
        let got: Vec<(NodeId, NodeId)> = extract_mapping(&lean.matrix, accept)
            .pairs
            .iter()
            .map(|c| (c.source, c.target))
            .collect();
        assert_eq!(got, expected, "case {case}: mapping changed under f32");
    }
}

#[test]
fn f32_and_f64_agree_for_every_algorithm() {
    let mut rng = SmallRng::seed_from_u64(0xbeef);
    let source = random_tree(&mut rng, 30);
    let target = random_tree(&mut rng, 30);
    let session = MatchSession::new(MatchConfig::default());
    let (sp, tp) = (session.prepare(&source), session.prepare(&target));
    for algo in [
        Algorithm::Hybrid,
        Algorithm::Linguistic,
        Algorithm::Structural,
    ] {
        let exact = session
            .run_with_precision(&algo, &sp, &tp, Precision::F64)
            .unwrap();
        let lean = session
            .run_with_precision(&algo, &sp, &tp, Precision::F32)
            .unwrap();
        assert_eq!(exact.matrix.precision(), Precision::F64);
        assert_eq!(lean.matrix.precision(), Precision::F32);
        let diff = exact.matrix.max_abs_diff(&lean.matrix);
        assert!(diff <= 1e-6, "{}: drift {diff}", algo.name());
        session.recycle(exact);
        session.recycle(lean);
    }
}
