//! The parallel engines must be indistinguishable from the sequential
//! fallback: bit-identical similarity matrices and totals on random trees,
//! and deterministic across repeated parallel runs.
//!
//! `QMATCH_THREADS=4` is pinned so the threaded path is exercised even on a
//! single-core machine (the wavefront splits rows across scoped threads
//! regardless of physical parallelism).

#![allow(deprecated)] // the one-shot wrappers stay pinned against the session API

use qmatch_core::algorithms::{
    hybrid_match, hybrid_match_sequential, linguistic_match, linguistic_match_sequential,
    match_many, structural_match, structural_match_sequential,
};
use qmatch_core::model::MatchConfig;
use qmatch_prng::SmallRng;
use qmatch_xsd::SchemaTree;

const CASES: usize = 48;

fn force_threads() {
    // Never removed: every test in this binary wants the threaded path.
    std::env::set_var("QMATCH_THREADS", "4");
}

/// A random tree with 1..=max_nodes nodes; labels drawn from a small
/// vocabulary so label interning sees collisions, plus a random suffix arm
/// so distinct labels appear too.
fn random_tree(rng: &mut SmallRng, max_nodes: usize) -> SchemaTree {
    const VOCAB: &[&str] = &[
        "name", "id", "order", "item", "quantity", "price", "date", "address",
    ];
    let nodes = rng.gen_range(1..=max_nodes);
    let mut labels: Vec<(String, Option<usize>)> = Vec::with_capacity(nodes);
    for i in 0..nodes {
        let label = if rng.gen_bool(0.7) {
            VOCAB[rng.gen_range(0..VOCAB.len())].to_owned()
        } else {
            format!("n{}", rng.gen_range(0..1000u32))
        };
        let parent = if i == 0 {
            None
        } else {
            Some(rng.gen_range(0..i))
        };
        labels.push((label, parent));
    }
    let borrowed: Vec<(&str, Option<usize>)> =
        labels.iter().map(|(l, p)| (l.as_str(), *p)).collect();
    SchemaTree::from_labels("random", &borrowed)
}

#[test]
fn hybrid_parallel_and_sequential_are_bit_identical() {
    force_threads();
    let mut rng = SmallRng::seed_from_u64(0xD1);
    let config = MatchConfig::default();
    for case in 0..CASES {
        // Up to 64×64 nodes: comfortably past the parallel cell threshold.
        let a = random_tree(&mut rng, 64);
        let b = random_tree(&mut rng, 64);
        let par = hybrid_match(&a, &b, &config);
        let seq = hybrid_match_sequential(&a, &b, &config);
        assert_eq!(par.matrix, seq.matrix, "case {case}: matrices diverge");
        assert!(
            par.total_qom.to_bits() == seq.total_qom.to_bits(),
            "case {case}: totals diverge: {} vs {}",
            par.total_qom,
            seq.total_qom
        );
    }
}

#[test]
fn structural_parallel_and_sequential_are_bit_identical() {
    force_threads();
    let mut rng = SmallRng::seed_from_u64(0xD2);
    let config = MatchConfig::default();
    for case in 0..CASES {
        let a = random_tree(&mut rng, 64);
        let b = random_tree(&mut rng, 64);
        let par = structural_match(&a, &b, &config);
        let seq = structural_match_sequential(&a, &b, &config);
        assert_eq!(par.matrix, seq.matrix, "case {case}");
        assert_eq!(
            par.total_qom.to_bits(),
            seq.total_qom.to_bits(),
            "case {case}"
        );
    }
}

#[test]
fn linguistic_parallel_and_sequential_are_bit_identical() {
    force_threads();
    let mut rng = SmallRng::seed_from_u64(0xD3);
    let config = MatchConfig::default();
    for case in 0..CASES {
        let a = random_tree(&mut rng, 64);
        let b = random_tree(&mut rng, 64);
        let par = linguistic_match(&a, &b, &config);
        let seq = linguistic_match_sequential(&a, &b, &config);
        assert_eq!(par.matrix, seq.matrix, "case {case}");
        assert_eq!(
            par.total_qom.to_bits(),
            seq.total_qom.to_bits(),
            "case {case}"
        );
    }
}

#[test]
fn repeated_parallel_runs_are_deterministic() {
    force_threads();
    let mut rng = SmallRng::seed_from_u64(0xD4);
    let config = MatchConfig::default();
    for case in 0..CASES {
        let a = random_tree(&mut rng, 64);
        let b = random_tree(&mut rng, 64);
        let first = hybrid_match(&a, &b, &config);
        let second = hybrid_match(&a, &b, &config);
        assert_eq!(first.matrix, second.matrix, "case {case}");
        assert_eq!(
            first.total_qom.to_bits(),
            second.total_qom.to_bits(),
            "case {case}"
        );
    }
}

#[test]
fn match_many_is_deterministic_and_order_preserving() {
    force_threads();
    let mut rng = SmallRng::seed_from_u64(0xD5);
    let config = MatchConfig::default();
    let pairs: Vec<(SchemaTree, SchemaTree)> = (0..12)
        .map(|_| (random_tree(&mut rng, 40), random_tree(&mut rng, 40)))
        .collect();
    let batch1 = match_many(&pairs, &config);
    let batch2 = match_many(&pairs, &config);
    assert_eq!(batch1.len(), pairs.len());
    for (i, ((o1, o2), (s, t))) in batch1.iter().zip(&batch2).zip(&pairs).enumerate() {
        assert_eq!(o1.matrix, o2.matrix, "pair {i}: batch not deterministic");
        let single = hybrid_match_sequential(s, t, &config);
        assert_eq!(
            o1.matrix, single.matrix,
            "pair {i}: batch diverges from sequential single match"
        );
    }
}
