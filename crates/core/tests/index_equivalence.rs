//! The candidate index must never change *what* a ranking says, only how
//! much DP it costs: whenever the prefilter's candidate set covers the
//! true top-k, the force-indexed ranking is bit-identical to the
//! exhaustive one — same names, same order, same float bits. And under
//! `IndexPolicy::Auto` a corpus at or below the floor ranks exhaustively,
//! so small registries cannot be perturbed by the index at all (the
//! lossless-fallback rule, DESIGN.md §16).

use qmatch_core::index::{CorpusIndex, IndexParams, IndexPolicy};
use qmatch_core::model::MatchConfig;
use qmatch_core::session::{MatchSession, PreparedSchema};
use qmatch_prng::SmallRng;
use qmatch_xsd::SchemaTree;
use std::collections::HashSet;

/// A random tree whose labels are drawn from one of three disjoint
/// vocabularies, so corpora contain lexically-related families (high
/// feature overlap within a family, little across) — the regime the
/// prefilter is designed for.
fn random_tree(rng: &mut SmallRng, family: usize, max_nodes: usize) -> SchemaTree {
    const VOCABS: [&[&str]; 3] = [
        &[
            "order", "item", "quantity", "price", "shipping", "billing", "address",
        ],
        &[
            "book",
            "title",
            "author",
            "publisher",
            "isbn",
            "edition",
            "chapter",
        ],
        &[
            "protein",
            "residue",
            "sequence",
            "structure",
            "atom",
            "chain",
            "model",
        ],
    ];
    let vocab = VOCABS[family % VOCABS.len()];
    let nodes = rng.gen_range(8..=max_nodes);
    let mut labels: Vec<(String, Option<usize>)> = Vec::with_capacity(nodes);
    for i in 0..nodes {
        let label = if rng.gen_bool(0.9) {
            vocab[rng.gen_range(0..vocab.len())].to_owned()
        } else {
            format!("x{}", rng.gen_range(0..100u32))
        };
        let parent = if i == 0 {
            None
        } else {
            Some(rng.gen_range(0..i))
        };
        labels.push((label, parent));
    }
    let borrowed: Vec<(&str, Option<usize>)> =
        labels.iter().map(|(l, p)| (l.as_str(), *p)).collect();
    SchemaTree::from_labels("random", &borrowed)
}

fn random_corpus(rng: &mut SmallRng, count: usize) -> Vec<(String, SchemaTree)> {
    (0..count)
        .map(|i| (format!("doc-{i:03}"), random_tree(rng, i, 24)))
        .collect()
}

fn bits(ranking: &[(String, f64)]) -> Vec<(String, u64)> {
    ranking
        .iter()
        .map(|(n, q)| (n.clone(), q.to_bits()))
        .collect()
}

#[test]
fn forced_topk_is_bit_identical_whenever_candidates_cover_the_truth() {
    let session = MatchSession::new(MatchConfig::default());
    let mut rng = SmallRng::seed_from_u64(0x1DEC5);
    let k = 5;
    let mut covered_cases = 0usize;
    for case in 0..12 {
        let corpus = random_corpus(&mut rng, 80);
        let prepared: Vec<PreparedSchema<'_>> =
            corpus.iter().map(|(_, t)| session.prepare(t)).collect();
        let refs: Vec<(&str, &PreparedSchema<'_>)> = corpus
            .iter()
            .zip(&prepared)
            .map(|((n, _), p)| (n.as_str(), p))
            .collect();
        let query = rng.gen_range(0..corpus.len());
        let source = &prepared[query];
        let exclude = Some(corpus[query].0.as_str());

        let exhaustive = session.topk(source, &refs, k, exclude, IndexPolicy::Off);
        let forced = session.topk(source, &refs, k, exclude, IndexPolicy::Force);

        // Reconstruct the candidate set the forced ranking was gated by.
        let mut index = CorpusIndex::default();
        for (name, prepared) in &refs {
            index.insert(name, session.signature(prepared));
        }
        let candidates: HashSet<String> = index
            .candidates(&session.signature(source))
            .names
            .into_iter()
            .collect();

        // Every forced entry must be a candidate, and its score must be
        // the exhaustive score for that name (the DP is untouched).
        for (name, qom) in &forced {
            assert!(
                candidates.contains(name),
                "case {case}: {name} not a candidate"
            );
            if let Some((_, truth)) = exhaustive.iter().find(|(n, _)| n == name) {
                assert_eq!(qom.to_bits(), truth.to_bits(), "case {case}: {name}");
            }
        }
        // The covering property: candidates ⊇ true top-k ⇒ identical
        // (name, score-bits) sequences, not merely overlapping sets.
        if exhaustive.iter().all(|(n, _)| candidates.contains(n)) {
            covered_cases += 1;
            assert_eq!(
                bits(&forced),
                bits(&exhaustive),
                "case {case}: covered candidates must reproduce the ranking"
            );
        }
    }
    assert!(
        covered_cases >= 8,
        "only {covered_cases}/12 cases covered their top-k — prefilter thresholds drifted"
    );
}

#[test]
fn auto_at_or_below_the_floor_is_exhaustive() {
    let session = MatchSession::new(MatchConfig::default());
    let mut rng = SmallRng::seed_from_u64(0xF100);
    let floor = IndexParams::default().floor;
    let corpus = random_corpus(&mut rng, floor);
    let prepared: Vec<PreparedSchema<'_>> =
        corpus.iter().map(|(_, t)| session.prepare(t)).collect();
    let refs: Vec<(&str, &PreparedSchema<'_>)> = corpus
        .iter()
        .zip(&prepared)
        .map(|((n, _), p)| (n.as_str(), p))
        .collect();
    for query in [0usize, floor / 2, floor - 1] {
        let source = &prepared[query];
        let exclude = Some(corpus[query].0.as_str());
        let off = session.topk(source, &refs, 10, exclude, IndexPolicy::Off);
        let auto = session.topk(source, &refs, 10, exclude, IndexPolicy::Auto);
        assert_eq!(
            bits(&off),
            bits(&auto),
            "query {query}: floor fallback broke"
        );
    }
}

#[test]
fn above_the_floor_auto_and_force_agree() {
    // Above the floor both policies consult the same index with the same
    // pair-local predicate, so their rankings must be identical.
    let session = MatchSession::new(MatchConfig::default());
    let mut rng = SmallRng::seed_from_u64(0xAB0E);
    let corpus = random_corpus(&mut rng, IndexParams::default().floor + 16);
    let prepared: Vec<PreparedSchema<'_>> =
        corpus.iter().map(|(_, t)| session.prepare(t)).collect();
    let refs: Vec<(&str, &PreparedSchema<'_>)> = corpus
        .iter()
        .zip(&prepared)
        .map(|((n, _), p)| (n.as_str(), p))
        .collect();
    let source = &prepared[3];
    let exclude = Some(corpus[3].0.as_str());
    let auto = session.topk(source, &refs, 8, exclude, IndexPolicy::Auto);
    let force = session.topk(source, &refs, 8, exclude, IndexPolicy::Force);
    assert_eq!(bits(&auto), bits(&force));
}
