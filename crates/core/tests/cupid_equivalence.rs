//! The CUPID engine's parallel path must be indistinguishable from the
//! sequential one — bit-identical matrices on random trees — and, stronger,
//! invariant to *how* the wavefront is scheduled: any worker count yields
//! the same bytes, because propagation flags are computed against the
//! immutable pre-pass leaf similarities and applied once per leaf pair.
//!
//! Everything lives in one test function: it mutates `QMATCH_THREADS`
//! mid-run, and the other test only asserts thread-count-independent
//! properties.

use qmatch_core::algorithms::mapping_generation_leaves;
use qmatch_core::model::MatchConfig;
use qmatch_core::session::MatchSession;
use qmatch_prng::SmallRng;
use qmatch_xsd::SchemaTree;

/// A random tree with 1..=max_nodes nodes; labels drawn from a small
/// vocabulary so label interning sees collisions, plus a random suffix arm
/// so distinct labels appear too.
fn random_tree(rng: &mut SmallRng, max_nodes: usize) -> SchemaTree {
    const VOCAB: &[&str] = &[
        "name", "id", "order", "item", "quantity", "price", "date", "address",
    ];
    let nodes = rng.gen_range(1..=max_nodes);
    let mut labels: Vec<(String, Option<usize>)> = Vec::with_capacity(nodes);
    for i in 0..nodes {
        let label = if rng.gen_bool(0.7) {
            VOCAB[rng.gen_range(0..VOCAB.len())].to_owned()
        } else {
            format!("n{}", rng.gen_range(0..1000u32))
        };
        let parent = if i == 0 {
            None
        } else {
            Some(rng.gen_range(0..i))
        };
        labels.push((label, parent));
    }
    let borrowed: Vec<(&str, Option<usize>)> =
        labels.iter().map(|(l, p)| (l.as_str(), *p)).collect();
    SchemaTree::from_labels("random", &borrowed)
}

#[test]
fn cupid_is_bit_identical_across_sequential_parallel_and_thread_counts() {
    let session = MatchSession::new(MatchConfig::default());
    let mut rng = SmallRng::seed_from_u64(0xC0BD);
    for case in 0..32 {
        // Up to 64×64 nodes: comfortably past the parallel cell threshold.
        let a = random_tree(&mut rng, 64);
        let b = random_tree(&mut rng, 64);
        let (pa, pb) = (session.prepare(&a), session.prepare(&b));
        std::env::set_var("QMATCH_THREADS", "4");
        let par = session.cupid(&pa, &pb);
        let seq = session.cupid_sequential(&pa, &pb);
        assert_eq!(par.matrix, seq.matrix, "case {case}: matrices diverge");
        assert_eq!(
            par.total_qom.to_bits(),
            seq.total_qom.to_bits(),
            "case {case}: totals diverge: {} vs {}",
            par.total_qom,
            seq.total_qom
        );
        // Wave-scheduling invariance: reslicing the wavefront across any
        // number of workers never shows in the output bytes.
        for threads in ["1", "2", "3", "8"] {
            std::env::set_var("QMATCH_THREADS", threads);
            let run = session.cupid(&pa, &pb);
            assert_eq!(
                run.matrix, seq.matrix,
                "case {case}: {threads} worker(s) diverge from sequential"
            );
            assert_eq!(run.total_qom.to_bits(), seq.total_qom.to_bits());
        }
    }
    std::env::remove_var("QMATCH_THREADS");
}

#[test]
fn cupid_leaf_mapping_is_leaf_anchored_and_one_to_one() {
    let session = MatchSession::new(MatchConfig::default());
    let mut rng = SmallRng::seed_from_u64(0xC0FF);
    let threshold = MatchConfig::default().cupid.th_accept;
    for case in 0..32 {
        let a = random_tree(&mut rng, 48);
        let b = random_tree(&mut rng, 48);
        let (pa, pb) = (session.prepare(&a), session.prepare(&b));
        let outcome = session.cupid(&pa, &pb);
        let mapping = mapping_generation_leaves(&pa, &pb, &outcome.matrix, threshold);
        let mut sources = std::collections::HashSet::new();
        let mut targets = std::collections::HashSet::new();
        for c in &mapping.pairs {
            assert!(
                pa.leaves().contains(&c.source) && pb.leaves().contains(&c.target),
                "case {case}: pair ({:?}, {:?}) is not leaf-to-leaf",
                c.source,
                c.target
            );
            assert!(
                c.score >= threshold,
                "case {case}: accepted score {} below th_accept",
                c.score
            );
            assert!(sources.insert(c.source), "case {case}: source reused");
            assert!(targets.insert(c.target), "case {case}: target reused");
        }
        session.recycle(outcome);
    }
}
