//! The session API (`MatchSession::prepare` + match methods) must be a pure
//! refactoring of the one-shot entry points: bit-identical similarity
//! matrices and totals on random trees, for the sequential and the
//! wavefront-parallel engines alike.
//!
//! The cross-schema label cache makes this non-trivial — a cached
//! `NameMatch` is reused verbatim across pairs, so these tests also pin
//! down that warming the cache can never change a matrix.

#![allow(deprecated)] // the one-shot wrappers stay pinned against the session API

use qmatch_core::algorithms::{
    hybrid_match, hybrid_match_sequential, linguistic_match, linguistic_match_sequential,
    structural_match, structural_match_sequential, MatchOutcome,
};
use qmatch_core::model::MatchConfig;
use qmatch_core::session::MatchSession;
use qmatch_prng::SmallRng;
use qmatch_xsd::SchemaTree;

const CASES: usize = 48;

fn force_threads() {
    // Never removed: every test in this binary wants the threaded path.
    std::env::set_var("QMATCH_THREADS", "4");
}

/// A random tree with 1..=max_nodes nodes; labels drawn from a small
/// vocabulary so label interning sees collisions, plus a random suffix arm
/// so distinct labels appear too.
fn random_tree(rng: &mut SmallRng, max_nodes: usize) -> SchemaTree {
    const VOCAB: &[&str] = &[
        "name", "id", "order", "item", "quantity", "price", "date", "address",
    ];
    let nodes = rng.gen_range(1..=max_nodes);
    let mut labels: Vec<(String, Option<usize>)> = Vec::with_capacity(nodes);
    for i in 0..nodes {
        let label = if rng.gen_bool(0.7) {
            VOCAB[rng.gen_range(0..VOCAB.len())].to_owned()
        } else {
            format!("n{}", rng.gen_range(0..1000u32))
        };
        let parent = if i == 0 {
            None
        } else {
            Some(rng.gen_range(0..i))
        };
        labels.push((label, parent));
    }
    let borrowed: Vec<(&str, Option<usize>)> =
        labels.iter().map(|(l, p)| (l.as_str(), *p)).collect();
    SchemaTree::from_labels("random", &borrowed)
}

fn assert_bit_identical(a: &MatchOutcome, b: &MatchOutcome, what: &str) {
    assert_eq!(a.matrix, b.matrix, "{what}: matrices diverge");
    assert_eq!(
        a.total_qom.to_bits(),
        b.total_qom.to_bits(),
        "{what}: totals diverge: {} vs {}",
        a.total_qom,
        b.total_qom
    );
}

#[test]
fn session_hybrid_matches_one_shot_paths() {
    force_threads();
    let mut rng = SmallRng::seed_from_u64(0xE1);
    let config = MatchConfig::default();
    let session = MatchSession::new(config);
    for case in 0..CASES {
        // Up to 64×64 nodes: comfortably past the parallel cell threshold.
        let a = random_tree(&mut rng, 64);
        let b = random_tree(&mut rng, 64);
        let (sp, tp) = (session.prepare(&a), session.prepare(&b));
        assert_bit_identical(
            &session.hybrid(&sp, &tp),
            &hybrid_match(&a, &b, &config),
            &format!("case {case} (auto)"),
        );
        assert_bit_identical(
            &session.hybrid_sequential(&sp, &tp),
            &hybrid_match_sequential(&a, &b, &config),
            &format!("case {case} (sequential)"),
        );
    }
}

#[test]
fn session_structural_and_linguistic_match_one_shot_paths() {
    force_threads();
    let mut rng = SmallRng::seed_from_u64(0xE2);
    let config = MatchConfig::default();
    let session = MatchSession::new(config);
    for case in 0..CASES {
        let a = random_tree(&mut rng, 64);
        let b = random_tree(&mut rng, 64);
        let (sp, tp) = (session.prepare(&a), session.prepare(&b));
        assert_bit_identical(
            &session.structural(&sp, &tp),
            &structural_match(&a, &b, &config),
            &format!("case {case} structural (auto)"),
        );
        assert_bit_identical(
            &session.structural_sequential(&sp, &tp),
            &structural_match_sequential(&a, &b, &config),
            &format!("case {case} structural (sequential)"),
        );
        assert_bit_identical(
            &session.linguistic(&sp, &tp),
            &linguistic_match(&a, &b, &config),
            &format!("case {case} linguistic (auto)"),
        );
        assert_bit_identical(
            &session.linguistic_sequential(&sp, &tp),
            &linguistic_match_sequential(&a, &b, &config),
            &format!("case {case} linguistic (sequential)"),
        );
    }
}

#[test]
fn warm_cache_and_repeated_matching_are_bit_identical() {
    force_threads();
    let mut rng = SmallRng::seed_from_u64(0xE3);
    let config = MatchConfig::default();
    let session = MatchSession::new(config);
    for case in 0..CASES {
        let a = random_tree(&mut rng, 64);
        let b = random_tree(&mut rng, 64);
        let (sp, tp) = (session.prepare(&a), session.prepare(&b));
        // By this iteration the cache holds entries from every earlier pair;
        // a fresh session has none. Both must agree, and re-running the warm
        // session must be a fixed point.
        let warm = session.hybrid(&sp, &tp);
        let warm_again = session.hybrid(&sp, &tp);
        assert_bit_identical(&warm, &warm_again, &format!("case {case} (rerun)"));
        let cold_session = MatchSession::new(config);
        let (csp, ctp) = (cold_session.prepare(&a), cold_session.prepare(&b));
        assert_bit_identical(
            &warm,
            &cold_session.hybrid(&csp, &ctp),
            &format!("case {case} (cold vs warm)"),
        );
    }
}

#[test]
fn prepare_once_equals_prepare_per_pair() {
    force_threads();
    let mut rng = SmallRng::seed_from_u64(0xE4);
    let config = MatchConfig::default();
    let trees: Vec<SchemaTree> = (0..8).map(|_| random_tree(&mut rng, 40)).collect();
    let session = MatchSession::new(config);
    let prepared: Vec<_> = trees.iter().map(|t| session.prepare(t)).collect();
    for (i, sp) in prepared.iter().enumerate() {
        for (j, tp) in prepared.iter().enumerate() {
            let once = session.hybrid(sp, tp);
            // Re-preparing the same trees (same or a fresh session) must
            // yield the same artifacts and hence the same matrix.
            let (sp2, tp2) = (session.prepare(&trees[i]), session.prepare(&trees[j]));
            assert_bit_identical(
                &once,
                &session.hybrid(&sp2, &tp2),
                &format!("pair ({i},{j}) re-prepared"),
            );
        }
    }
}

#[test]
fn match_corpus_equals_pairwise_session_matching() {
    force_threads();
    let mut rng = SmallRng::seed_from_u64(0xE5);
    let config = MatchConfig::default();
    let trees: Vec<(SchemaTree, SchemaTree)> = (0..12)
        .map(|_| (random_tree(&mut rng, 40), random_tree(&mut rng, 40)))
        .collect();
    let session = MatchSession::new(config);
    let prepared: Vec<_> = trees
        .iter()
        .map(|(s, t)| (session.prepare(s), session.prepare(t)))
        .collect();
    let refs: Vec<_> = prepared.iter().map(|(s, t)| (s, t)).collect();
    let batch = session.match_corpus(&refs);
    assert_eq!(batch.len(), trees.len());
    for (i, (out, (sp, tp))) in batch.iter().zip(&prepared).enumerate() {
        assert_bit_identical(out, &session.hybrid(sp, tp), &format!("pair {i}"));
        let (s, t) = &trees[i];
        assert_bit_identical(
            out,
            &hybrid_match_sequential(s, t, &config),
            &format!("pair {i} vs one-shot sequential"),
        );
    }
}
