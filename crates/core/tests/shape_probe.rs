use qmatch_core::{MatchConfig, MatchSession, TreeDiff};
use qmatch_xsd::SchemaTree;

#[test]
fn move_preserving_preorder_identity() {
    // Old: R -> {A, B}.  New: R -> A -> B (B moved under A).
    // Pre-order indices are identical (R=0, A=1, B=2) in both trees.
    let old = SchemaTree::from_labels("R", &[("R", None), ("A", Some(0)), ("B", Some(0))]);
    let new = SchemaTree::from_labels("R", &[("R", None), ("A", Some(0)), ("B", Some(1))]);
    let diff = TreeDiff::compute(&old, &new);
    println!("shape_changed = {}", diff.shape_changed());
    println!("ops = {:?}", diff.ops());

    let session = MatchSession::new(MatchConfig::default());
    let old_p = session.prepare(&old);
    let incremental = session.reprepare(&old_p, &new, &diff);
    let scratch = session.prepare(&new);
    incremental.assert_structural_eq(&scratch);
}
