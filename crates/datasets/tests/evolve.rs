//! Cross-crate property tests pinning the schema-evolution subsystem
//! (`qmatch_core::diff` / `qmatch_core::evolve`) to its from-scratch
//! counterparts over the drift generator's workloads. They live in this
//! crate because `qmatch-datasets` depends on `qmatch-core` — the reverse
//! dev-dependency would be a cycle.

use qmatch_core::model::MatchConfig;
use qmatch_core::session::MatchSession;
use qmatch_datasets::corpus;
use qmatch_datasets::drift::{mutation_chain, synthetic_registry, GATE_SEED};
use qmatch_datasets::synth;
use qmatch_xsd::SchemaTree;

fn labels(tree: &SchemaTree) -> Vec<String> {
    tree.iter().map(|(_, n)| n.label.clone()).collect()
}

/// Registry generation is prefix-stable for *every* seed, not just the
/// pinned gate seed: a larger registry extends a smaller one element for
/// element. (The committed BENCH/gate numbers rely on this staying true.)
#[test]
fn registry_prefixes_are_stable_across_seeds() {
    for seed in [GATE_SEED, GATE_SEED + 1, 0xDEAD_BEEF, 42] {
        let small = synthetic_registry(24, seed);
        let large = synthetic_registry(60, seed);
        for ((na, ta), (nb, tb)) in small.iter().zip(&large) {
            assert_eq!(na, nb, "seed {seed:#x}");
            assert_eq!(labels(ta), labels(tb), "seed {seed:#x} {na}");
        }
    }
}

/// Mutation chains are prefix-stable across seeds too: chains of
/// different lengths from the same `(base, intensity, seed)` agree on
/// their common prefix, and different seeds diverge.
#[test]
fn mutation_chain_prefixes_are_stable_across_seeds() {
    let base = corpus::po1();
    for seed in [GATE_SEED, GATE_SEED ^ 0x5555, 7] {
        let long = mutation_chain(&base, 8, 0.3, seed);
        let short = mutation_chain(&base, 4, 0.3, seed);
        for (a, b) in short.iter().zip(&long) {
            assert_eq!(labels(a), labels(b), "seed {seed:#x}");
        }
    }
    let a = mutation_chain(&base, 4, 0.3, GATE_SEED);
    let b = mutation_chain(&base, 4, 0.3, GATE_SEED + 1);
    assert_ne!(labels(&a[3]), labels(&b[3]), "seeds must diverge");
}

/// Incremental re-preparation is structurally identical to preparing the
/// new revision from scratch, over >1000 drift-generated transitions
/// spanning every corpus base and mutation intensities from near-noop to
/// heavy rewrite.
#[test]
fn incremental_reprepare_equals_scratch_over_mutation_chains() {
    let session = MatchSession::new(MatchConfig::default());
    let bases = [
        corpus::po1(),
        corpus::po2(),
        corpus::article(),
        corpus::book(),
        corpus::dcmd_item(),
        corpus::dcmd_ord(),
    ];
    let intensities = [0.02, 0.1, 0.3, 0.7];
    let mut transitions = 0usize;
    for (b, base) in bases.iter().enumerate() {
        for (i, &intensity) in intensities.iter().enumerate() {
            for s in 0..7u64 {
                let seed = GATE_SEED ^ ((b as u64) << 32) ^ ((i as u64) << 16) ^ s;
                let mut prev = base.clone();
                for next in mutation_chain(base, 6, intensity, seed) {
                    let old = session.prepare(&prev);
                    let diff = session.diff_trees(&prev, &next);
                    let incremental = session.reprepare(&old, &next, &diff);
                    let scratch = session.prepare(&next);
                    incremental.assert_structural_eq(&scratch);
                    transitions += 1;
                    prev = next;
                }
            }
        }
    }
    assert!(
        transitions >= 1000,
        "covered only {transitions} transitions"
    );
}

/// Incremental re-match (diff-guided row reuse, with its lossless
/// fallback) is bit-identical to a full hybrid recompute on every
/// transition of drift-generated mutation chains — the tentpole's
/// correctness claim.
#[test]
fn incremental_rematch_is_bit_identical_over_drift_chains() {
    let session = MatchSession::new(MatchConfig::default());
    let target_tree = corpus::po2();
    let target = session.prepare(&target_tree);
    let mut incremental_runs = 0usize;
    let mut fallback_runs = 0usize;
    let small_bases = [corpus::po1(), corpus::book(), corpus::dcmd_ord()];
    let chains = small_bases
        .iter()
        .enumerate()
        .flat_map(|(b, base)| {
            [0.02, 0.15, 0.45]
                .into_iter()
                .enumerate()
                .map(move |(i, intensity)| {
                    let seed = GATE_SEED ^ ((b as u64) << 8) ^ (i as u64);
                    (base.clone(), mutation_chain(base, 8, intensity, seed))
                })
        })
        // One large chain: PIR (231 nodes) at low intensity, where the
        // incremental path engages on nearly every step.
        .chain(std::iter::once((
            synth::pir().clone(),
            mutation_chain(synth::pir(), 6, 0.05, GATE_SEED),
        )));
    for (base, chain) in chains {
        let mut prev_tree = base;
        for next_tree in chain {
            let prev = session.prepare(&prev_tree);
            let previous = session.hybrid(&prev, &target);
            let diff = session.diff_trees(&prev_tree, &next_tree);
            let new = session.reprepare(&prev, &next_tree, &diff);
            let got = session.rematch(&new, &target, &diff, &previous);
            let want = session.hybrid(&new, &target);
            assert_eq!(
                got.outcome.matrix,
                want.matrix,
                "{} ({} nodes, {} recompute rows, incremental={})",
                next_tree.name(),
                next_tree.len(),
                diff.recompute_count(),
                got.incremental,
            );
            assert_eq!(got.outcome.total_qom, want.total_qom);
            // The label-reuse variant must agree bit-for-bit too, and label
            // reuse must not perturb the incremental-vs-fallback decision.
            let prev_labels = session.label_matrix(&prev, &target);
            let evolved =
                session.rematch_evolved(&prev, &prev_labels, &new, &target, &diff, &previous);
            assert_eq!(
                evolved.outcome.matrix,
                want.matrix,
                "rematch_evolved diverged on {} ({} nodes)",
                next_tree.name(),
                next_tree.len(),
            );
            assert_eq!(evolved.outcome.total_qom, want.total_qom);
            assert_eq!(evolved.incremental, got.incremental);
            session.recycle(evolved.outcome);
            if got.incremental {
                incremental_runs += 1;
            } else {
                fallback_runs += 1;
            }
            session.recycle(previous);
            session.recycle(got.outcome);
            session.recycle(want);
            prev_tree = next_tree;
        }
    }
    assert!(
        incremental_runs >= 10,
        "the incremental path barely ran ({incremental_runs} of {} transitions)",
        incremental_runs + fallback_runs
    );
    assert!(
        fallback_runs >= 1,
        "heavy-intensity chains should trip the fallback at least once"
    );
}
