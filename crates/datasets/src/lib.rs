#![warn(missing_docs)]

//! The reconstructed evaluation corpus for the QMatch experiments.
//!
//! The paper evaluates on schemas from four domains (Table 1):
//!
//! | schema   | elements | max depth |
//! |----------|----------|-----------|
//! | PO1      | 10       | 3         |
//! | PO2      | 9        | 3         |
//! | Article  | 18       | 3         |
//! | Book     | 6        | 2         |
//! | DCMDItem | 38       | 2         |
//! | DCMDOrd  | 53       | 3         |
//! | PIR      | 231      | 6         |
//! | PDB      | 3753     | 7         |
//!
//! The original files were published only in a UMass-Lowell MS thesis that
//! is not retrievable, so this crate *reconstructs* them (see DESIGN.md §4):
//! [`corpus`] holds hand-written XSDs constrained to the published element
//! counts and depths (PO1 is the paper's Figure 1 verbatim), [`synth`]
//! generates the two protein schemas at their published scale with a known
//! ground truth, [`figures`] holds the Library/Human illustration schemas of
//! Figures 7/8, and [`gold`] curates the manually-determined real matches
//! (`R`) for every evaluated pair.

pub mod corpus;
pub mod drift;
pub mod figures;
pub mod gold;
pub mod instances;
pub mod stats;
pub mod synth;

pub use stats::{table1_rows, Table1Row};
