//! Drift-style synthetic registries for candidate-index benchmarking.
//!
//! The paper corpus has six schemas; registry-scale experiments need
//! thousands. This module grows them by *drifting* the corpus: each
//! synthetic schema starts from one of the six bases and applies a
//! deterministic mix of label mutations (kept / abbreviated /
//! synonym-replaced / renamed away, mirroring the PIR→PDB transformation
//! of [`crate::synth`]) plus small structural edits (leaves added and
//! dropped). The result is a registry whose members cluster around six
//! "families" — realistic for schema repositories, and exactly the shape
//! a candidate index must handle: near-duplicates that must be recalled,
//! cross-family pairs that should be pruned.
//!
//! Generation is a pure function of `(count, seed)`, so benchmark and CI
//! runs are reproducible across machines and sessions.

use crate::{corpus, synth};
use qmatch_prng::SmallRng;
use qmatch_xsd::SchemaTree;
use std::collections::HashMap;

/// The pinned seed CI's accuracy gate runs with; benchmarks default to it
/// too so committed numbers are reproducible.
pub const GATE_SEED: u64 = 0x51AC_2005;

/// Corpus-label synonym substitutions, analogous to the bio-domain map in
/// [`crate::synth`] but drawn from the purchase/bibliography vocabulary
/// the six base schemas actually use.
const SYNONYM_MAP: &[(&str, &str)] = &[
    ("PO", "Purchase"),
    ("Item", "Product"),
    ("Quantity", "Amount"),
    ("Author", "Writer"),
    ("Title", "Heading"),
    ("Date", "Day"),
    ("Publisher", "Press"),
    ("Price", "Cost"),
];

/// Disjoint vocabulary used when a label is renamed away or a padding leaf
/// is added — words that do not appear in any base schema, so renames
/// genuinely reduce label overlap.
const DRIFT_VOCAB: &[&str] = &[
    "ledger",
    "voucher",
    "batch",
    "carrier",
    "customs",
    "pallet",
    "waybill",
    "depot",
    "quota",
    "tariff",
    "surcharge",
    "manifest",
];

/// Flattens a tree to the parallel `(labels, parents)` vectors
/// [`SchemaTree::from_labels`] accepts. Iteration is pre-order, so every
/// parent precedes its children — the invariant `from_labels` requires.
fn flatten(tree: &SchemaTree) -> (Vec<String>, Vec<Option<usize>>) {
    let mut index_of: HashMap<_, usize> = HashMap::new();
    let mut labels: Vec<String> = Vec::new();
    let mut parents: Vec<Option<usize>> = Vec::new();
    for (id, node) in tree.iter() {
        index_of.insert(id, labels.len());
        labels.push(node.label.clone());
        parents.push(node.parent.map(|p| index_of[&p]));
    }
    (labels, parents)
}

/// The synonym replacement for a label, if any: the corpus-vocabulary
/// [`SYNONYM_MAP`] first, the bio-domain map of [`crate::synth`] second.
fn synonym_for(label: &str) -> Option<String> {
    SYNONYM_MAP
        .iter()
        .find(|(from, _)| *from == label)
        .map(|(_, to)| (*to).to_owned())
        .or_else(|| synth::synonymize(label))
}

/// One drifted copy of `base`, named `name`, driven by `rng`. `salt` is
/// the schema's registry index: renamed-away and padding labels embed it,
/// so two different schemas never coin the same fresh label — accidental
/// exact matches between unrelated schemas would otherwise dominate their
/// QoM (the root label especially) and make the registry unrealistically
/// tangled.
fn drift(base: &SchemaTree, name: &str, salt: usize, rng: &mut SmallRng) -> SchemaTree {
    let (mut labels, mut parents) = flatten(base);

    // Revision distance varies per schema, as it does in real schema
    // repositories: most members are light touch-ups of their base, a
    // tail has drifted far. Squaring the uniform draw biases toward
    // light. This spread is what makes candidate generation meaningful —
    // a query's top-k neighbors are its near revisions (high feature
    // overlap), while far relatives score lower than them on both the QoM
    // and the signature, so a threshold can separate the two.
    let intensity = {
        let t = rng.gen_f64();
        t * t
    };
    let keep_below = 0.95 - 0.50 * intensity;
    let abbreviate_below = keep_below + 0.02 + 0.13 * intensity;
    let synonym_below = abbreviate_below + 0.02 + 0.12 * intensity;

    // Label drift: the PIR→PDB mutation mix, scaled so each schema stays
    // recognizable *to the matcher* — family variants must outrank the
    // structural noise floor (Eq. 2 grants every leaf pair `WH + WC` for
    // free, so unrelated same-shape schemas already score ≈0.7), or
    // ranking them would be meaningless for any method, indexed or not.
    let mut counter = 0u32;
    for (position, label) in labels.iter_mut().enumerate() {
        let roll = rng.gen_f64();
        if roll < keep_below {
            continue; // kept
        } else if roll < abbreviate_below {
            *label = synth::abbreviate(label);
        } else if roll < synonym_below {
            if let Some(replacement) = synonym_for(label) {
                *label = replacement;
            }
        } else if position == 0 {
            // The root label is never renamed away: real schema revisions
            // keep (or at most abbreviate) their document element, and a
            // nonsense root would sink every family match below the
            // structural noise floor.
            *label = synth::abbreviate(label);
        } else {
            counter += 1;
            *label = format!(
                "{}{}",
                DRIFT_VOCAB[rng.gen_range(0..DRIFT_VOCAB.len())],
                salt as u32 * 256 + counter
            );
        }
    }

    // Structural drift, scaled with the same intensity: light revisions
    // drop at most one leaf and add at most two; far ones edit more. Only
    // leaves are dropped, so no parent reference ever dangles.
    let extra = usize::from(intensity > 0.6);
    for _ in 0..rng.gen_range(0..2usize) + extra {
        let leaves: Vec<usize> = (1..labels.len())
            .filter(|&i| !parents.contains(&Some(i)))
            .collect();
        if leaves.len() <= 1 {
            break;
        }
        let victim = leaves[rng.gen_range(0..leaves.len())];
        labels.remove(victim);
        parents.remove(victim);
        for p in parents.iter_mut().flatten() {
            debug_assert_ne!(*p, victim, "dropped node was a leaf");
            if *p > victim {
                *p -= 1;
            }
        }
    }
    for _ in 0..rng.gen_range(0..3usize) + extra {
        counter += 1;
        let parent = rng.gen_range(0..labels.len());
        labels.push(format!(
            "{}{}",
            DRIFT_VOCAB[rng.gen_range(0..DRIFT_VOCAB.len())],
            salt as u32 * 256 + counter
        ));
        parents.push(Some(parent));
    }

    let entries: Vec<(&str, Option<usize>)> = labels
        .iter()
        .map(String::as_str)
        .zip(parents.iter().copied())
        .collect();
    SchemaTree::from_labels(name, &entries)
}

/// Number of base families the registry cycles: the six paper-corpus
/// schemas plus [`BASE_COUNT`]`- 6` generated domains with disjoint
/// vocabularies. A real schema repository holds *many* unrelated
/// families, each with a handful of revisions — not six giant clusters —
/// and the candidate index's pruning power is only measurable against
/// that shape.
pub const BASE_COUNT: usize = 24;

/// Syllables the generated domains coin labels from. Consonant-vowel
/// pairs keep the words pronounceable while staying lexically disjoint
/// from the paper vocabulary (and, with high probability, each other).
const SYLLABLES: &[&str] = &[
    "ba", "ce", "di", "fo", "gu", "ha", "je", "ki", "lo", "mu", "na", "pe", "qui", "ro", "su",
    "ta", "ve", "wi", "xo", "zu",
];

/// A fresh pseudo-word of 2–3 syllables from the domain's RNG stream.
fn coin_word(rng: &mut SmallRng) -> String {
    (0..rng.gen_range(2..4usize))
        .map(|_| SYLLABLES[rng.gen_range(0..SYLLABLES.len())])
        .collect()
}

/// A generated base family: the *shape* of one paper-corpus schema with
/// every label replaced by a coined word from the domain's own
/// vocabulary. Structure stays realistic (the paper's published element
/// counts and depths); the label space is disjoint from every other
/// family, as unrelated real-world domains are.
fn generated_base(shape: &SchemaTree, domain: usize, seed: u64) -> SchemaTree {
    let mut rng =
        SmallRng::seed_from_u64(seed ^ (domain as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93));
    let mut index_of: HashMap<_, usize> = HashMap::new();
    let mut labels: Vec<String> = Vec::new();
    let mut parents: Vec<Option<usize>> = Vec::new();
    for (id, node) in shape.iter() {
        index_of.insert(id, labels.len());
        // Capitalized compound for the root (document elements tend to be
        // compound nouns), single coined words below.
        let word = if labels.is_empty() {
            let (a, b) = (coin_word(&mut rng), coin_word(&mut rng));
            format!("{}{}", capitalize(&a), capitalize(&b))
        } else {
            coin_word(&mut rng)
        };
        labels.push(word);
        parents.push(node.parent.map(|p| index_of[&p]));
    }
    let name = format!("domain-{domain:02}");
    let entries: Vec<(&str, Option<usize>)> = labels
        .iter()
        .map(String::as_str)
        .zip(parents.iter().copied())
        .collect();
    SchemaTree::from_labels(&name, &entries)
}

fn capitalize(word: &str) -> String {
    let mut chars = word.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// The [`BASE_COUNT`] base schemas for a seed: the six paper-corpus
/// schemas, then generated domains reusing their shapes round-robin.
fn base_families(seed: u64) -> Vec<SchemaTree> {
    let corpus = [
        corpus::po1(),
        corpus::po2(),
        corpus::article(),
        corpus::book(),
        corpus::dcmd_item(),
        corpus::dcmd_ord(),
    ];
    let mut bases: Vec<SchemaTree> = corpus.to_vec();
    for domain in corpus.len()..BASE_COUNT {
        bases.push(generated_base(&corpus[domain % corpus.len()], domain, seed));
    }
    bases
}

/// Generates `count` drifted schemas named `synth-00000..`, cycling the
/// [`BASE_COUNT`] base families. Deterministic in `(count, seed)`: every
/// schema gets its own RNG stream derived from the seed and its index, so
/// `synthetic_registry(10_000, s)[i]` equals `synthetic_registry(1_000, s)[i]`
/// for any `i < 1_000` — registries of different sizes share a prefix.
pub fn synthetic_registry(count: usize, seed: u64) -> Vec<(String, SchemaTree)> {
    let bases = base_families(seed);
    (0..count)
        .map(|i| {
            let base = &bases[i % bases.len()];
            let mut rng =
                SmallRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let name = format!("synth-{i:05}");
            let tree = drift(base, &name, i, &mut rng);
            (name, tree)
        })
        .collect()
}

/// One controlled-intensity revision of `prev` — the schema-evolution
/// workload generator. Unlike [`drift`], which draws its own revision
/// distance (registry members spread from near-copies to far relatives),
/// a chain step takes `intensity` as an argument: it is approximately the
/// fraction of labels mutated, so evolution benchmarks can sweep dirty
/// fractions directly. Mutated labels split evenly between abbreviation,
/// synonym substitution, and rename-away (the root is only ever
/// abbreviated); one leaf drop and one leaf add each fire with
/// probability `intensity`.
fn mutate_step(prev: &SchemaTree, salt: usize, intensity: f64, rng: &mut SmallRng) -> SchemaTree {
    let intensity = intensity.clamp(0.0, 1.0);
    let (mut labels, mut parents) = flatten(prev);
    let keep_below = 1.0 - intensity;
    let mut counter = 0u32;
    for (position, label) in labels.iter_mut().enumerate() {
        if rng.gen_f64() < keep_below {
            continue;
        }
        match rng.gen_range(0..3usize) {
            0 => *label = synth::abbreviate(label),
            1 => {
                if let Some(replacement) = synonym_for(label) {
                    *label = replacement;
                } else {
                    *label = synth::abbreviate(label);
                }
            }
            _ if position == 0 => *label = synth::abbreviate(label),
            _ => {
                counter += 1;
                *label = format!(
                    "{}{}",
                    DRIFT_VOCAB[rng.gen_range(0..DRIFT_VOCAB.len())],
                    salt as u32 * 256 + counter
                );
            }
        }
    }
    if rng.gen_f64() < intensity {
        // Only leaves are dropped, so no parent reference ever dangles.
        let leaves: Vec<usize> = (1..labels.len())
            .filter(|&i| !parents.contains(&Some(i)))
            .collect();
        if leaves.len() > 1 {
            let victim = leaves[rng.gen_range(0..leaves.len())];
            labels.remove(victim);
            parents.remove(victim);
            for p in parents.iter_mut().flatten() {
                debug_assert_ne!(*p, victim, "dropped node was a leaf");
                if *p > victim {
                    *p -= 1;
                }
            }
        }
    }
    if rng.gen_f64() < intensity {
        counter += 1;
        let parent = rng.gen_range(0..labels.len());
        labels.push(format!(
            "{}{}",
            DRIFT_VOCAB[rng.gen_range(0..DRIFT_VOCAB.len())],
            salt as u32 * 256 + counter
        ));
        parents.push(Some(parent));
    }
    let entries: Vec<(&str, Option<usize>)> = labels
        .iter()
        .map(String::as_str)
        .zip(parents.iter().copied())
        .collect();
    SchemaTree::from_labels(prev.name(), &entries)
}

/// A seeded chain of `steps` successive revisions of `base`: element `k`
/// is one `mutate_step` of the given `intensity` applied to element
/// `k-1` (element 0 to `base` itself). Every revision keeps the base's
/// name — a chain models repeated `PUT`s of one registry entry, the
/// evolution subsystem's workload.
///
/// Deterministic in `(base, intensity, seed)`, and prefix-stable in
/// `steps`: each step derives its own RNG stream from the seed and its
/// index, so `mutation_chain(b, 10, i, s)[k]` equals
/// `mutation_chain(b, 5, i, s)[k]` for `k < 5`.
pub fn mutation_chain(
    base: &SchemaTree,
    steps: usize,
    intensity: f64,
    seed: u64,
) -> Vec<SchemaTree> {
    let mut out: Vec<SchemaTree> = Vec::with_capacity(steps);
    let mut current = base.clone();
    for k in 0..steps {
        let mut rng =
            SmallRng::seed_from_u64(seed ^ (k as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F));
        current = mutate_step(&current, k, intensity, &mut rng);
        out.push(current.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_prefix_stable() {
        let a = synthetic_registry(24, GATE_SEED);
        let b = synthetic_registry(24, GATE_SEED);
        for ((na, ta), (nb, tb)) in a.iter().zip(&b) {
            assert_eq!(na, nb);
            let la: Vec<_> = ta.iter().map(|(_, n)| n.label.clone()).collect();
            let lb: Vec<_> = tb.iter().map(|(_, n)| n.label.clone()).collect();
            assert_eq!(la, lb, "{na}");
        }
        // Larger registries extend smaller ones rather than reshuffling.
        let big = synthetic_registry(48, GATE_SEED);
        for ((na, ta), (nb, tb)) in a.iter().zip(&big) {
            assert_eq!(na, nb);
            assert_eq!(ta.len(), tb.len());
        }
    }

    #[test]
    fn schemas_are_drifted_but_recognizable() {
        let registry = synthetic_registry(240, GATE_SEED);
        assert_eq!(registry.len(), 240);
        assert_eq!(registry[0].0, "synth-00000");
        assert_eq!(registry[239].0, "synth-00239");
        let base = corpus::po1();
        let base_labels: std::collections::HashSet<String> =
            base.iter().map(|(_, n)| n.label.clone()).collect();
        let mut drifted = 0usize;
        let mut kept_majority = 0usize;
        // Every BASE_COUNT-th schema drifts from po1.
        for (_, tree) in registry.iter().step_by(BASE_COUNT) {
            let labels: Vec<String> = tree.iter().map(|(_, n)| n.label.clone()).collect();
            let kept = labels.iter().filter(|l| base_labels.contains(*l)).count();
            if kept < labels.len() {
                drifted += 1;
            }
            if 2 * kept >= base.len() {
                kept_majority += 1;
            }
        }
        assert!(drifted >= 8, "mutations fired on {drifted}/10 schemas");
        assert!(
            kept_majority >= 8,
            "drift kept schemas recognizable in only {kept_majority}/10 cases"
        );
    }

    #[test]
    fn different_seeds_diverge() {
        let a = synthetic_registry(6, GATE_SEED);
        let b = synthetic_registry(6, GATE_SEED + 1);
        let labels = |r: &[(String, SchemaTree)]| -> Vec<String> {
            r.iter()
                .flat_map(|(_, t)| t.iter().map(|(_, n)| n.label.clone()).collect::<Vec<_>>())
                .collect()
        };
        assert_ne!(labels(&a), labels(&b));
    }

    #[test]
    fn mutation_chains_are_deterministic_and_prefix_stable() {
        let base = corpus::po1();
        let long = mutation_chain(&base, 10, 0.25, GATE_SEED);
        let short = mutation_chain(&base, 5, 0.25, GATE_SEED);
        assert_eq!(long.len(), 10);
        for (a, b) in long.iter().zip(&short) {
            let la: Vec<_> = a.iter().map(|(_, n)| n.label.clone()).collect();
            let lb: Vec<_> = b.iter().map(|(_, n)| n.label.clone()).collect();
            assert_eq!(la, lb, "shorter chains are prefixes of longer ones");
        }
        let other_seed = mutation_chain(&base, 5, 0.25, GATE_SEED + 1);
        assert_ne!(
            long[4].iter().map(|(_, n)| &n.label).collect::<Vec<_>>(),
            other_seed[4]
                .iter()
                .map(|(_, n)| &n.label)
                .collect::<Vec<_>>(),
            "different seeds diverge"
        );
    }

    #[test]
    fn mutation_chain_intensity_scales_the_edit_rate() {
        let base = synth::pir();
        let light = &mutation_chain(base, 1, 0.02, GATE_SEED)[0];
        let heavy = &mutation_chain(base, 1, 0.60, GATE_SEED)[0];
        let changed = |rev: &SchemaTree| {
            let base_labels: Vec<_> = base.iter().map(|(_, n)| n.label.clone()).collect();
            rev.iter()
                .zip(base_labels)
                .filter(|((_, n), old)| n.label != *old)
                .count()
        };
        let (light_changed, heavy_changed) = (changed(light), changed(heavy));
        assert!(
            light_changed * 5 < heavy_changed,
            "intensity 0.02 changed {light_changed}, 0.60 changed {heavy_changed}"
        );
        assert!(
            light_changed <= base.len() / 10,
            "light steps stay light: {light_changed}/{}",
            base.len()
        );
        // Chains keep the registry name: they model repeated PUTs of one
        // entry.
        assert_eq!(light.name(), base.name());
    }

    #[test]
    fn trees_stay_structurally_sound() {
        for (name, tree) in synthetic_registry(36, GATE_SEED) {
            assert_eq!(tree.name(), name);
            assert!(tree.len() >= 4, "{name} shrank to {} nodes", tree.len());
            assert!(tree.max_depth() >= 1, "{name} lost its hierarchy");
            // Every non-root node's parent exists and sits one level up.
            for (id, node) in tree.iter() {
                if let Some(parent) = node.parent {
                    assert_eq!(tree.node(parent).level + 1, node.level, "{name}/{id:?}");
                }
            }
        }
    }
}
