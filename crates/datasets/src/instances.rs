//! Instance-document generation: produce a valid XML document for a parsed
//! [`Schema`]. Used by the examples, the CLI tests, and the
//! generate→validate round-trip property tests (everything this module
//! emits must pass [`qmatch_xsd::validate::validate`]).

use qmatch_prng::SmallRng;
use qmatch_xml::dom::Element;
use qmatch_xsd::BuiltinType;
use qmatch_xsd::{
    AttributeDecl, AttributeUse, ComplexType, ElementDecl, Facet, MaxOccurs, Particle, Schema,
    SimpleType, TypeDef, TypeRef,
};

/// Generation settings.
#[derive(Debug, Clone, Copy)]
pub struct InstanceOptions {
    /// RNG seed (generation is deterministic per seed).
    pub seed: u64,
    /// Chance in `[0,1]` of emitting an optional (`minOccurs="0"`) particle.
    pub optional_probability: f64,
    /// Cap on repetitions of unbounded particles.
    pub max_repeats: u32,
    /// Recursion depth cap (recursive types stop expanding here).
    pub max_depth: u32,
}

impl Default for InstanceOptions {
    fn default() -> Self {
        InstanceOptions {
            seed: 7,
            optional_probability: 0.5,
            max_repeats: 3,
            max_depth: 24,
        }
    }
}

/// Generates one valid instance of the first global element of `schema`.
pub fn generate_instance(schema: &Schema, options: &InstanceOptions) -> Option<Element> {
    let root = schema.elements.first()?;
    let mut generator = Generator {
        schema,
        rng: SmallRng::seed_from_u64(options.seed),
        options: *options,
    };
    Some(generator.element(root, 0))
}

/// Generates an instance for the global element named `root`.
pub fn generate_instance_of(
    schema: &Schema,
    root: &str,
    options: &InstanceOptions,
) -> Option<Element> {
    let decl = schema.element_by_name(root)?;
    let mut generator = Generator {
        schema,
        rng: SmallRng::seed_from_u64(options.seed),
        options: *options,
    };
    Some(generator.element(decl, 0))
}

struct Generator<'s> {
    schema: &'s Schema,
    rng: SmallRng,
    options: InstanceOptions,
}

impl<'s> Generator<'s> {
    fn element(&mut self, decl: &ElementDecl, depth: u32) -> Element {
        let decl = match &decl.reference {
            Some(name) => self.schema.element_by_name(name).unwrap_or(decl),
            None => decl,
        };
        let mut element = Element::new(&decl.name);
        if let Some(fixed) = &decl.fixed {
            element = element.with_text(fixed);
            return element;
        }
        self.fill(&mut element, &decl.type_ref, depth);
        element
    }

    fn fill(&mut self, element: &mut Element, type_ref: &TypeRef, depth: u32) {
        match type_ref {
            TypeRef::Builtin(b) => {
                let value = self.builtin_value(*b, &[]);
                if !value.is_empty() {
                    *element = std::mem::replace(element, Element::new("tmp")).with_text(&value);
                }
            }
            TypeRef::Unspecified => {}
            TypeRef::Named(name) => match self.schema.type_by_name(name) {
                Some(TypeDef::Complex(ct)) => self.complex(element, ct, depth),
                Some(TypeDef::Simple(st)) => {
                    let value = self.simple_value(st);
                    *element = std::mem::replace(element, Element::new("tmp")).with_text(&value);
                }
                None => {}
            },
            TypeRef::Inline(def) => match def.as_ref() {
                TypeDef::Complex(ct) => self.complex(element, ct, depth),
                TypeDef::Simple(st) => {
                    let value = self.simple_value(st);
                    *element = std::mem::replace(element, Element::new("tmp")).with_text(&value);
                }
            },
        }
    }

    fn complex(&mut self, element: &mut Element, ct: &ComplexType, depth: u32) {
        let Ok((particles, attributes, groups)) =
            qmatch_xsd::resolve::effective_complex(self.schema, ct)
        else {
            return;
        };
        let attributes: Vec<AttributeDecl> = attributes.into_iter().cloned().collect();
        let groups: Vec<String> = groups.into_iter().map(str::to_owned).collect();
        let particles: Vec<Particle> = particles.into_iter().cloned().collect();
        for attr in &attributes {
            self.attribute(element, attr);
        }
        for group in &groups {
            if let Some(attrs) = self.schema.attribute_group_by_name(group) {
                let attrs: Vec<AttributeDecl> = attrs.to_vec();
                for attr in &attrs {
                    self.attribute(element, attr);
                }
            }
        }
        if let Some(base) = &ct.simple_base {
            let text = match base {
                TypeRef::Builtin(b) => self.builtin_value(*b, &[]),
                _ => "text".to_owned(),
            };
            *element = std::mem::replace(element, Element::new("tmp")).with_text(&text);
            return;
        }
        for content in &particles {
            self.particle(element, content, depth, &mut Vec::new());
        }
    }

    fn attribute(&mut self, element: &mut Element, decl: &AttributeDecl) {
        let target = match &decl.reference {
            Some(name) => self.schema.attribute_by_name(name).unwrap_or(decl),
            None => decl,
        };
        let emit = match decl.required {
            AttributeUse::Required => true,
            AttributeUse::Prohibited => false,
            AttributeUse::Optional => self.rng.gen_bool(self.options.optional_probability),
        };
        if !emit {
            return;
        }
        let value = if let Some(fixed) = &target.fixed {
            fixed.clone()
        } else if let Some(default) = &target.default {
            default.clone()
        } else {
            match &target.type_ref {
                TypeRef::Builtin(b) => self.builtin_value(*b, &[]),
                TypeRef::Named(name) => match self.schema.type_by_name(name) {
                    Some(TypeDef::Simple(st)) => self.simple_value(st),
                    _ => "value".to_owned(),
                },
                TypeRef::Inline(def) => match def.as_ref() {
                    TypeDef::Simple(st) => self.simple_value(st),
                    TypeDef::Complex(_) => "value".to_owned(),
                },
                TypeRef::Unspecified => "value".to_owned(),
            }
        };
        element.set_attr(&target.name, &value);
    }

    fn particle(
        &mut self,
        parent: &mut Element,
        particle: &Particle,
        depth: u32,
        groups_on_path: &mut Vec<String>,
    ) {
        match particle {
            Particle::Element(decl) => {
                let count = self.occurrence_count(decl.min_occurs, decl.max_occurs, depth);
                for _ in 0..count {
                    let child = self.element(decl, depth + 1);
                    parent.add_child(child);
                }
            }
            Particle::Sequence {
                items,
                min_occurs,
                max_occurs,
            } => {
                let reps = self.occurrence_count(*min_occurs, *max_occurs, depth);
                for _ in 0..reps {
                    for item in items {
                        self.particle(parent, item, depth, groups_on_path);
                    }
                }
            }
            Particle::Choice {
                items,
                min_occurs,
                max_occurs,
            } => {
                if items.is_empty() {
                    return;
                }
                let reps = self.occurrence_count(*min_occurs, *max_occurs, depth);
                for _ in 0..reps {
                    let pick = self.rng.gen_range(0..items.len());
                    self.particle(parent, &items[pick], depth, groups_on_path);
                }
            }
            Particle::All { items, min_occurs } => {
                if *min_occurs > 0 || self.rng.gen_bool(self.options.optional_probability) {
                    for item in items {
                        self.particle(parent, item, depth, groups_on_path);
                    }
                }
            }
            Particle::GroupRef {
                name,
                min_occurs,
                max_occurs,
            } => {
                if groups_on_path.iter().any(|g| g == name) {
                    return;
                }
                if let Some(body) = self.schema.group_by_name(name) {
                    let body = body.clone();
                    let reps = self.occurrence_count(*min_occurs, *max_occurs, depth);
                    groups_on_path.push(name.clone());
                    for _ in 0..reps {
                        self.particle(parent, &body, depth, groups_on_path);
                    }
                    groups_on_path.pop();
                }
            }
        }
    }

    fn occurrence_count(&mut self, min: u32, max: MaxOccurs, depth: u32) -> u32 {
        // Past the depth cap, emit only what validity strictly requires.
        if depth >= self.options.max_depth {
            return min;
        }
        let upper = match max {
            MaxOccurs::Bounded(b) => b.min(min + self.options.max_repeats),
            MaxOccurs::Unbounded => min + self.options.max_repeats,
        };
        if min >= upper {
            return min;
        }
        if min == 0 && !self.rng.gen_bool(self.options.optional_probability) {
            return 0;
        }
        self.rng.gen_range(min.max(1)..=upper)
    }

    fn simple_value(&mut self, st: &SimpleType) -> String {
        match st {
            SimpleType::Restriction { base, facets } => match base {
                TypeRef::Builtin(b) => self.builtin_value(*b, facets),
                TypeRef::Named(name) => match self.schema.type_by_name(name) {
                    Some(TypeDef::Simple(inner)) => {
                        // Facets of the outer step are honored when they are
                        // enumerations; otherwise delegate to the inner type.
                        if let Some(e) = pick_enumeration(facets) {
                            e
                        } else {
                            let inner = inner.clone();
                            self.simple_value(&inner)
                        }
                    }
                    _ => "text".to_owned(),
                },
                _ => "text".to_owned(),
            },
            SimpleType::List { item } => {
                let one = match item {
                    TypeRef::Builtin(b) => self.builtin_value(*b, &[]),
                    _ => "1".to_owned(),
                };
                format!("{one} {one}")
            }
            SimpleType::Union { members } => match members.first() {
                Some(TypeRef::Builtin(b)) => self.builtin_value(*b, &[]),
                _ => "1".to_owned(),
            },
        }
    }

    fn builtin_value(&mut self, builtin: BuiltinType, facets: &[Facet]) -> String {
        if let Some(e) = pick_enumeration(facets) {
            return e;
        }
        // Numeric bounds: emit a value inside [lo, hi].
        let bound = |facets: &[Facet], pick: fn(&Facet) -> Option<f64>| -> Option<f64> {
            facets.iter().find_map(pick)
        };
        let lo = bound(facets, |f| match f {
            Facet::MinInclusive(v) => v.parse().ok(),
            Facet::MinExclusive(v) => v.parse::<f64>().ok().map(|x| x + 1.0),
            _ => None,
        });
        let hi = bound(facets, |f| match f {
            Facet::MaxInclusive(v) => v.parse().ok(),
            Facet::MaxExclusive(v) => v.parse::<f64>().ok().map(|x| x - 1.0),
            _ => None,
        });
        let exact_len = facets.iter().find_map(|f| match f {
            Facet::Length(n) => Some(*n as usize),
            Facet::MinLength(n) => Some(*n as usize),
            _ => None,
        });

        use BuiltinType::*;
        match builtin {
            Boolean => if self.rng.gen_bool(0.5) {
                "true"
            } else {
                "false"
            }
            .to_owned(),
            Integer | Long | Int | Short | Byte | Decimal => {
                let lo = lo.unwrap_or(-50.0);
                let hi = hi.unwrap_or(99.0).max(lo);
                format!("{}", self.rng.gen_range(lo as i64..=hi as i64))
            }
            NonNegativeInteger | UnsignedLong | UnsignedInt | UnsignedShort | UnsignedByte => {
                let lo = lo.unwrap_or(0.0).max(0.0);
                let hi = hi.unwrap_or(99.0).max(lo);
                format!("{}", self.rng.gen_range(lo as u64..=hi as u64))
            }
            PositiveInteger => {
                let lo = lo.unwrap_or(1.0).max(1.0);
                let hi = hi.unwrap_or(99.0).max(lo);
                format!("{}", self.rng.gen_range(lo as u64..=hi as u64))
            }
            NonPositiveInteger => format!("-{}", self.rng.gen_range(0..50)),
            NegativeInteger => format!("-{}", self.rng.gen_range(1..50)),
            Float | Double => format!("{}.5", self.rng.gen_range(0..100)),
            Date => format!(
                "200{}-{:02}-{:02}",
                self.rng.gen_range(0..10),
                self.rng.gen_range(1..=12),
                self.rng.gen_range(1..=28)
            ),
            DateTime => format!(
                "2005-{:02}-{:02}T{:02}:{:02}:00",
                self.rng.gen_range(1..=12),
                self.rng.gen_range(1..=28),
                self.rng.gen_range(0..24),
                self.rng.gen_range(0..60)
            ),
            Time => format!(
                "{:02}:{:02}:00",
                self.rng.gen_range(0..24),
                self.rng.gen_range(0..60)
            ),
            GYear => format!("{}", self.rng.gen_range(1990..2006)),
            GYearMonth => format!("2005-{:02}", self.rng.gen_range(1..=12)),
            GMonth => format!("--{:02}", self.rng.gen_range(1..=12)),
            GMonthDay => format!(
                "--{:02}-{:02}",
                self.rng.gen_range(1..=12),
                self.rng.gen_range(1..=28)
            ),
            GDay => format!("---{:02}", self.rng.gen_range(1..=28)),
            Duration => "P1Y".to_owned(),
            Name | NcName | Id | IdRef | Entity => {
                format!("name{}", self.rng.gen_range(0..10_000))
            }
            _ => {
                // String-family types (and anything else): sized words.
                let len = exact_len.unwrap_or_else(|| self.rng.gen_range(3..12));
                let mut s = std::string::String::with_capacity(len);
                for _ in 0..len {
                    s.push((b'a' + self.rng.gen_range(0..26)) as char);
                }
                s
            }
        }
    }
}

fn pick_enumeration(facets: &[Facet]) -> Option<String> {
    facets.iter().find_map(|f| match f {
        Facet::Enumeration(v) => Some(v.clone()),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmatch_xsd::{parse_schema, validate, validate::parse_document};

    fn round_trip(xsd: &str, seed: u64) {
        let schema = parse_schema(xsd).expect("schema parses");
        let options = InstanceOptions {
            seed,
            ..InstanceOptions::default()
        };
        let instance = generate_instance(&schema, &options).expect("instance generated");
        let text = instance.to_string();
        let document = parse_document(&text).expect("instance re-parses");
        let report = validate(&document, &schema).expect("validation runs");
        assert!(report.is_valid(), "seed {seed}:\n{text}\n{report}");
    }

    #[test]
    fn corpus_schemas_generate_valid_instances() {
        use crate::corpus;
        for xsd in [
            corpus::po1_xsd(),
            corpus::po2_xsd(),
            corpus::article_xsd(),
            corpus::book_xsd(),
            corpus::dcmd_item_xsd(),
            corpus::dcmd_ord_xsd(),
        ] {
            for seed in 0..8 {
                round_trip(xsd, seed);
            }
        }
    }

    #[test]
    fn protein_schemas_generate_valid_instances() {
        let corpus = crate::synth::protein_corpus();
        round_trip(&corpus.pir_xsd, 1);
        round_trip(&corpus.pdb_xsd, 2);
    }

    #[test]
    fn facet_constrained_values_respect_bounds() {
        let xsd = r#"<xs:schema xmlns:xs="x">
          <xs:simpleType name="Qty">
            <xs:restriction base="xs:integer">
              <xs:minInclusive value="10"/><xs:maxInclusive value="12"/>
            </xs:restriction>
          </xs:simpleType>
          <xs:element name="r"><xs:complexType><xs:sequence>
            <xs:element name="q" type="Qty" maxOccurs="unbounded"/>
          </xs:sequence></xs:complexType></xs:element>
        </xs:schema>"#;
        for seed in 0..16 {
            round_trip(xsd, seed);
        }
    }

    #[test]
    fn enumerations_pick_a_listed_value() {
        let xsd = r#"<xs:schema xmlns:xs="x">
          <xs:simpleType name="Size">
            <xs:restriction base="xs:string">
              <xs:enumeration value="S"/><xs:enumeration value="M"/>
            </xs:restriction>
          </xs:simpleType>
          <xs:element name="r" type="Size"/>
        </xs:schema>"#;
        let schema = parse_schema(xsd).unwrap();
        let instance = generate_instance(&schema, &InstanceOptions::default()).unwrap();
        assert_eq!(instance.text(), "S");
        round_trip(xsd, 0);
    }

    #[test]
    fn required_attributes_and_fixed_values_are_emitted() {
        let xsd = r#"<xs:schema xmlns:xs="x">
          <xs:element name="r"><xs:complexType>
            <xs:sequence><xs:element name="x" type="xs:string"/></xs:sequence>
            <xs:attribute name="id" type="xs:positiveInteger" use="required"/>
            <xs:attribute name="version" type="xs:string" fixed="1.0"/>
          </xs:complexType></xs:element>
        </xs:schema>"#;
        let schema = parse_schema(xsd).unwrap();
        let instance = generate_instance(&schema, &InstanceOptions::default()).unwrap();
        assert!(instance.attr("id").is_some());
        if let Some(v) = instance.attr("version") {
            assert_eq!(v, "1.0");
        }
        for seed in 0..8 {
            round_trip(xsd, seed);
        }
    }

    #[test]
    fn recursive_schemas_terminate() {
        let xsd = r#"<xs:schema xmlns:xs="x">
          <xs:complexType name="Node"><xs:sequence>
            <xs:element name="value" type="xs:string"/>
            <xs:element name="child" type="Node" minOccurs="0"/>
          </xs:sequence></xs:complexType>
          <xs:element name="tree" type="Node"/>
        </xs:schema>"#;
        for seed in 0..8 {
            round_trip(xsd, seed);
        }
    }

    #[test]
    fn choice_and_group_content_round_trips() {
        let xsd = r#"<xs:schema xmlns:xs="x">
          <xs:group name="Pair"><xs:sequence>
            <xs:element name="k" type="xs:string"/>
            <xs:element name="v" type="xs:string"/>
          </xs:sequence></xs:group>
          <xs:element name="r"><xs:complexType>
            <xs:choice>
              <xs:element name="a" type="xs:int"/>
              <xs:sequence><xs:group ref="Pair"/></xs:sequence>
            </xs:choice>
          </xs:complexType></xs:element>
        </xs:schema>"#;
        for seed in 0..16 {
            round_trip(xsd, seed);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let schema = parse_schema(crate::corpus::dcmd_ord_xsd()).unwrap();
        let options = InstanceOptions::default();
        let a = generate_instance(&schema, &options).unwrap();
        let b = generate_instance(&schema, &options).unwrap();
        assert_eq!(a.to_string(), b.to_string());
        let other = InstanceOptions {
            seed: 99,
            ..options
        };
        let c = generate_instance(&schema, &other).unwrap();
        assert_ne!(
            a.to_string(),
            c.to_string(),
            "different seeds should differ"
        );
    }

    #[test]
    fn missing_root_returns_none() {
        let schema = parse_schema(r#"<xs:schema xmlns:xs="x"/>"#).unwrap();
        assert!(generate_instance(&schema, &InstanceOptions::default()).is_none());
        let schema2 = parse_schema(crate::corpus::po1_xsd()).unwrap();
        assert!(generate_instance_of(&schema2, "NoSuch", &InstanceOptions::default()).is_none());
        assert!(generate_instance_of(&schema2, "PO", &InstanceOptions::default()).is_some());
    }
}

#[cfg(test)]
mod option_tests {
    use super::*;
    use qmatch_xsd::parse_schema;

    #[test]
    fn optional_probability_zero_emits_the_minimal_document() {
        let schema = parse_schema(crate::corpus::article_xsd()).unwrap();
        let options = InstanceOptions {
            optional_probability: 0.0,
            max_repeats: 0,
            ..InstanceOptions::default()
        };
        let minimal = generate_instance(&schema, &options).unwrap();
        let text = minimal.to_string();
        // Abstract and DOI are minOccurs="0"; they must be absent.
        assert!(!text.contains("Abstract"), "{text}");
        assert!(!text.contains("DOI"), "{text}");
        // Required members are present exactly once.
        assert_eq!(text.matches("<Title>").count(), 1, "{text}");
        assert_eq!(text.matches("<Author>").count(), 1, "{text}");
    }

    #[test]
    fn optional_probability_one_emits_every_optional() {
        let schema = parse_schema(crate::corpus::article_xsd()).unwrap();
        let options = InstanceOptions {
            optional_probability: 1.0,
            ..InstanceOptions::default()
        };
        let full = generate_instance(&schema, &options).unwrap();
        let text = full.to_string();
        assert!(text.contains("Abstract"), "{text}");
        assert!(text.contains("DOI"), "{text}");
        assert!(text.contains("Affiliation"), "{text}");
    }

    #[test]
    fn max_repeats_bounds_unbounded_particles() {
        let schema = parse_schema(crate::corpus::article_xsd()).unwrap();
        for max_repeats in [0u32, 1, 5] {
            let options = InstanceOptions {
                optional_probability: 1.0,
                max_repeats,
                seed: 11,
                ..InstanceOptions::default()
            };
            let instance = generate_instance(&schema, &options).unwrap();
            let authors = instance.to_string().matches("<Author>").count();
            // Author is minOccurs=1 maxOccurs=unbounded.
            assert!(
                authors >= 1 && authors <= 1 + max_repeats as usize,
                "max_repeats={max_repeats}: {authors} authors"
            );
        }
    }
}
