//! Manually determined real matches (`R`) for every evaluated schema pair.
//!
//! Paths are slash-joined label paths from the root (the representation
//! [`qmatch_core::eval::GoldStandard`] uses). For the hand-written corpus
//! these were curated alongside the reconstruction; for the protein pair the
//! gold standard falls out of the generator (see [`crate::synth`]).

use qmatch_core::eval::GoldStandard;

/// Real matches between PO1 and PO2 (9 pairs — every PO1 element except the
/// `PurchaseInfo` wrapper, which has no PO2 counterpart).
pub fn po_gold() -> GoldStandard {
    GoldStandard::from_pairs([
        ("PO", "PurchaseOrder"),
        ("PO/OrderNo", "PurchaseOrder/OrderNo"),
        ("PO/PurchaseDate", "PurchaseOrder/Date"),
        ("PO/PurchaseInfo/BillingAddr", "PurchaseOrder/BillTo"),
        ("PO/PurchaseInfo/ShippingAddr", "PurchaseOrder/ShipTo"),
        ("PO/PurchaseInfo/Lines", "PurchaseOrder/Items"),
        ("PO/PurchaseInfo/Lines/Item", "PurchaseOrder/Items/Item"),
        (
            "PO/PurchaseInfo/Lines/Quantity",
            "PurchaseOrder/Items/Item/Qty",
        ),
        (
            "PO/PurchaseInfo/Lines/UnitOfMeasure",
            "PurchaseOrder/Items/Item/UOM",
        ),
    ])
}

/// Real matches between Article and Book (6 pairs).
pub fn book_gold() -> GoldStandard {
    GoldStandard::from_pairs([
        ("Article", "Book"),
        ("Article/Title", "Book/Title"),
        ("Article/Authors/Author", "Book/Author"),
        ("Article/Authors/Author/LastName", "Book/Author/Name"),
        ("Article/Journal/Year", "Book/Year"),
        ("Article/Journal/Name", "Book/Publisher"),
    ])
}

/// Real matches between DCMDItem and DCMDOrd (17 pairs — each order line
/// embeds the catalog item's descriptive fields, and the shipping blocks
/// correspond wholesale; this is the largest manual match set among the
/// small domains, as in the paper's Figure 6).
pub fn dcmd_gold() -> GoldStandard {
    GoldStandard::from_pairs([
        ("Item/ItemID", "Order/Lines/Line/ItemID"),
        ("Item/Title", "Order/Lines/Line/Title"),
        ("Item/Description", "Order/Lines/Line/Description"),
        ("Item/Category", "Order/Lines/Line/Category"),
        ("Item/Brand", "Order/Lines/Line/Brand"),
        ("Item/SKU", "Order/Lines/Line/SKU"),
        ("Item/Pricing/ListPrice", "Order/Lines/Line/UnitPrice"),
        ("Item/Pricing/DiscountPrice", "Order/Lines/Line/Discount"),
        ("Item/Pricing/Currency", "Order/Currency"),
        ("Item/Stock/Quantity", "Order/Lines/Line/Quantity"),
        ("Item/Dimensions/Weight", "Order/Lines/Line/Weight"),
        ("Item/Attributes/Color", "Order/Lines/Line/Color"),
        ("Item/Attributes/Size", "Order/Lines/Line/Size"),
        ("Item/Shipping", "Order/ShipInfo"),
        ("Item/Shipping/ShipMethod", "Order/ShipInfo/ShipMethod"),
        ("Item/Shipping/ShipCost", "Order/ShipInfo/ShipCost"),
        ("Item/Shipping/ShipDays", "Order/ShipInfo/ShipDays"),
    ])
}

/// Real matches between the Library (Fig. 7) and human (Fig. 8) schemas:
/// there are none — the schemas are semantically unrelated; only their
/// shapes coincide.
pub fn library_human_gold() -> GoldStandard {
    GoldStandard::new()
}

/// Real matches between PIR and PDB (delegates to the generator's
/// by-construction record).
pub fn protein_gold() -> &'static GoldStandard {
    crate::synth::protein_gold()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;
    use std::collections::HashSet;

    /// Every path in a gold standard must exist in its schema tree —
    /// otherwise recall is structurally unreachable.
    fn assert_paths_resolve(
        gold: &GoldStandard,
        source: &qmatch_xsd::SchemaTree,
        target: &qmatch_xsd::SchemaTree,
    ) {
        let paths = |t: &qmatch_xsd::SchemaTree| -> HashSet<String> {
            t.iter()
                .map(|(id, _)| t.path_labels(id).join("/"))
                .collect()
        };
        let sp = paths(source);
        let tp = paths(target);
        for (s, t) in gold.iter() {
            assert!(sp.contains(s), "source path {s:?} not in {}", source.name());
            assert!(tp.contains(t), "target path {t:?} not in {}", target.name());
        }
    }

    #[test]
    fn po_gold_paths_resolve() {
        let gold = po_gold();
        assert_eq!(gold.len(), 9);
        assert_paths_resolve(&gold, &corpus::po1(), &corpus::po2());
    }

    #[test]
    fn book_gold_paths_resolve() {
        let gold = book_gold();
        assert_eq!(gold.len(), 6);
        assert_paths_resolve(&gold, &corpus::article(), &corpus::book());
    }

    #[test]
    fn dcmd_gold_paths_resolve() {
        let gold = dcmd_gold();
        assert_eq!(gold.len(), 17);
        assert_paths_resolve(&gold, &corpus::dcmd_item(), &corpus::dcmd_ord());
    }

    #[test]
    fn library_human_gold_is_empty() {
        assert!(library_human_gold().is_empty());
    }

    #[test]
    fn gold_mappings_are_one_to_one() {
        for gold in [po_gold(), book_gold(), dcmd_gold()] {
            let mut sources = HashSet::new();
            let mut targets = HashSet::new();
            for (s, t) in gold.iter() {
                assert!(sources.insert(s.clone()), "source {s} matched twice");
                assert!(targets.insert(t.clone()), "target {t} matched twice");
            }
        }
    }
}
