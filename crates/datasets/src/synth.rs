//! Synthetic protein schemas — the PIR / PDB substitution.
//!
//! The paper's protein experiments use the PIR (231 elements, depth 6) and
//! PDB (3753 elements, depth 7) schemas, which are not retrievable. This
//! module generates stand-ins at exactly the published scale, *with a known
//! ground truth*: PDB is built by copying PIR with controlled label
//! transformations (kept / abbreviated / synonym-replaced / renamed away)
//! plus thousands of padding elements from a disjoint crystallography
//! vocabulary. Every kept/abbreviated/synonym node is recorded as a real
//! match, giving the gold standard `R` that §5's protein evaluation needs
//! ("it is nearly impossible to accurately determine the matches manually" —
//! by construction, we don't have to).
//!
//! Generation is deterministic (fixed seed), so the schemas, counts, and
//! gold standard are reproducible across runs and platforms.

use qmatch_core::eval::GoldStandard;
use qmatch_prng::SmallRng;
use qmatch_xsd::{parse_schema, SchemaTree};
use std::collections::HashSet;
use std::fmt::Write as _;
use std::sync::OnceLock;

/// Published size of the PIR schema (Table 1).
pub const PIR_ELEMENTS: usize = 231;
/// Published depth of the PIR schema (Table 1).
pub const PIR_DEPTH: u32 = 6;
/// Published size of the PDB schema (Table 1).
pub const PDB_ELEMENTS: usize = 3753;
/// Published depth of the PDB schema (Table 1).
pub const PDB_DEPTH: u32 = 7;

/// The fixed generation seed. Changing it changes the corpus; tests pin the
/// derived statistics.
pub const SEED: u64 = 0x51AC_2005;

/// Bio/protein vocabulary used for PIR elements.
///
/// Curated so that no two entries (and no entry and a spine label) are
/// synonyms of each other in the built-in thesaurus — otherwise the
/// generator would create real matches it does not record in the gold
/// standard. The `vocab_has_no_internal_synonyms` test enforces this.
const PIR_VOCAB: &[&str] = &[
    "protein",
    "organism",
    "genus",
    "gene",
    "reference",
    "author",
    "title",
    "journal",
    "year",
    "keyword",
    "domain",
    "motif",
    "length",
    "weight",
    "classification",
    "superfamily",
    "family",
    "function",
    "pathway",
    "enzyme",
    "cofactor",
    "residue",
    "modification",
    "variant",
    "isoform",
    "accession",
    "created",
    "revised",
    "summary",
    "comment",
    "database",
    "name",
    "synonym",
    "taxonomy",
    "lineage",
    "host",
    "tissue",
    "localization",
    "expression",
    "structure",
    "helix",
    "strand",
    "turn",
    "bond",
    "signal",
    "transit",
    "peptide",
    "codon",
    "exon",
];

/// Crystallography vocabulary used only for PDB padding — disjoint from
/// `PIR_VOCAB` so padding never accidentally matches across schemas.
const PDB_VOCAB: &[&str] = &[
    "cell",
    "lattice",
    "diffraction",
    "resolution",
    "rfactor",
    "spacegroup",
    "symmetry",
    "matrix",
    "vector",
    "model",
    "refinement",
    "wavelength",
    "detector",
    "beamline",
    "temperature",
    "crystal",
    "solvent",
    "ligand",
    "heterogen",
    "anisotropy",
    "occupancy",
    "bfactor",
    "twinning",
    "header",
    "compound",
    "experiment",
    "software",
    "scale",
    "origin",
    "axis",
    "angle",
    "fraction",
    "mosaicity",
    "completeness",
    "redundancy",
    "sigma",
];

/// Synonym substitutions used when transforming PIR labels into PDB labels.
/// Every pair is backed by the built-in thesaurus so a linguistic matcher
/// (and a human) recognizes them; the replacement words do not otherwise
/// appear in `PIR_VOCAB`.
const SYNONYM_MAP: &[(&str, &str)] = &[
    ("entry", "record"),
    ("gene", "locus"),
    ("structure", "conformation"),
    ("function", "role"),
    ("protein", "polypeptide"),
    ("residue", "monomer"),
    ("database", "databank"),
    ("keyword", "term"),
    ("motif", "pattern"),
    ("comment", "note"),
];

const LEAF_TYPES: &[&str] = &[
    "xs:string",
    "xs:integer",
    "xs:decimal",
    "xs:date",
    "xs:token",
];

/// A generated element tree prior to XSD rendering.
struct GenTree {
    labels: Vec<String>,
    parents: Vec<Option<usize>>,
    levels: Vec<u32>,
    children: Vec<Vec<usize>>,
    leaf_type: Vec<&'static str>,
    used: HashSet<String>,
}

impl GenTree {
    fn new(root_label: &str) -> GenTree {
        let mut t = GenTree {
            labels: vec![root_label.to_owned()],
            parents: vec![None],
            levels: vec![0],
            children: vec![Vec::new()],
            leaf_type: vec![LEAF_TYPES[0]],
            used: HashSet::new(),
        };
        t.used.insert(root_label.to_owned());
        t
    }

    fn add(&mut self, parent: usize, label: String, leaf_type: &'static str) -> usize {
        debug_assert!(!self.used.contains(&label), "duplicate label {label}");
        let id = self.labels.len();
        self.used.insert(label.clone());
        self.labels.push(label);
        self.parents.push(Some(parent));
        self.levels.push(self.levels[parent] + 1);
        self.children.push(Vec::new());
        self.leaf_type.push(leaf_type);
        self.children[parent].push(id);
        id
    }

    fn len(&self) -> usize {
        self.labels.len()
    }

    fn path(&self, mut i: usize) -> String {
        let mut parts = vec![self.labels[i].as_str()];
        while let Some(p) = self.parents[i] {
            parts.push(self.labels[p].as_str());
            i = p;
        }
        parts.reverse();
        parts.join("/")
    }

    /// Renders the tree as an XSD document with nested inline complex types.
    fn to_xsd(&self) -> String {
        let mut out = String::with_capacity(self.len() * 96);
        out.push_str(
            "<?xml version=\"1.0\"?>\n<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">\n",
        );
        self.render(0, &mut out, 1);
        out.push_str("</xs:schema>\n");
        out
    }

    fn render(&self, i: usize, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        if self.children[i].is_empty() {
            let _ = writeln!(
                out,
                "{pad}<xs:element name=\"{}\" type=\"{}\"/>",
                self.labels[i], self.leaf_type[i]
            );
        } else {
            let _ = writeln!(out, "{pad}<xs:element name=\"{}\">", self.labels[i]);
            let _ = writeln!(out, "{pad}  <xs:complexType><xs:sequence>");
            for &c in &self.children[i] {
                self.render(c, out, indent + 2);
            }
            let _ = writeln!(out, "{pad}  </xs:sequence></xs:complexType>");
            let _ = writeln!(out, "{pad}</xs:element>");
        }
    }
}

/// Picks a fresh (globally unused) label based on `word`.
fn fresh_label(word: &str, used: &HashSet<String>, counter: &mut u32) -> String {
    if !used.contains(word) {
        return word.to_owned();
    }
    loop {
        *counter += 1;
        let candidate = format!("{word}{counter}");
        if !used.contains(&candidate) {
            return candidate;
        }
    }
}

/// Consonant-skeleton abbreviation: first char plus the non-vowels of the
/// remainder, capped at 4 chars — recognizable by the lexicon's
/// `looks_like_abbreviation` heuristic. Numeric suffixes are preserved.
pub(crate) fn abbreviate(label: &str) -> String {
    let word_end = label
        .find(|c: char| c.is_ascii_digit())
        .unwrap_or(label.len());
    let (word, suffix) = label.split_at(word_end);
    let mut out = String::new();
    let mut chars = word.chars();
    if let Some(first) = chars.next() {
        out.push(first);
    }
    for c in chars {
        if !"aeiou".contains(c) && out.len() < 4 {
            out.push(c);
        }
    }
    format!("{out}{suffix}")
}

/// Applies the synonym map to a label's word part, preserving any numeric
/// suffix. Returns `None` when the word has no registered synonym.
pub(crate) fn synonymize(label: &str) -> Option<String> {
    let word_end = label
        .find(|c: char| c.is_ascii_digit())
        .unwrap_or(label.len());
    let (word, suffix) = label.split_at(word_end);
    SYNONYM_MAP
        .iter()
        .find(|(from, _)| *from == word)
        .map(|(_, to)| format!("{to}{suffix}"))
}

/// Grows `tree` to exactly `target` nodes, never exceeding `max_depth`.
/// Parents are chosen with a shallow bias (pick two candidates, keep the
/// shallower) so the trees get the bushy, wide shape of real data schemas.
/// Nodes whose index is in `frozen_leaves` never receive children — used so
/// PDB padding cannot turn a copied PIR leaf into an internal node (which
/// would silently invalidate the recorded gold pair's leaf/leaf character).
fn grow(
    tree: &mut GenTree,
    target: usize,
    max_depth: u32,
    vocab: &[&str],
    frozen_leaves: &HashSet<usize>,
    rng: &mut SmallRng,
) {
    let mut counter = 0u32;
    while tree.len() < target {
        let a = rng.gen_range(0..tree.len());
        let b = rng.gen_range(0..tree.len());
        let parent = if tree.levels[a] <= tree.levels[b] {
            a
        } else {
            b
        };
        if tree.levels[parent] >= max_depth || frozen_leaves.contains(&parent) {
            continue;
        }
        let word = vocab[rng.gen_range(0..vocab.len())];
        let label = fresh_label(word, &tree.used, &mut counter);
        let leaf_type = LEAF_TYPES[rng.gen_range(0..LEAF_TYPES.len())];
        tree.add(parent, label, leaf_type);
    }
}

/// The generated corpus: both schemas (source text and compiled trees) plus
/// the by-construction gold standard.
pub struct ProteinCorpus {
    /// PIR XSD source.
    pub pir_xsd: String,
    /// PDB XSD source.
    pub pdb_xsd: String,
    /// Compiled PIR schema tree.
    pub pir: SchemaTree,
    /// Compiled PDB schema tree.
    pub pdb: SchemaTree,
    /// Real matches (PIR path, PDB path) recorded during generation.
    pub gold: GoldStandard,
}

fn generate() -> ProteinCorpus {
    let mut rng = SmallRng::seed_from_u64(SEED);

    // ---- PIR ----
    let mut pir = GenTree::new("ProteinEntry");
    // Spine guarantees the published depth exactly.
    let spine = [
        "Sequence", "Feature", "Fragment", "Site", "Position", "Offset",
    ];
    let mut parent = 0usize;
    for label in spine {
        parent = pir.add(parent, label.to_owned(), "xs:string");
    }
    grow(
        &mut pir,
        PIR_ELEMENTS,
        PIR_DEPTH,
        PIR_VOCAB,
        &HashSet::new(),
        &mut rng,
    );

    // ---- PDB: transformed copy of PIR ----
    // Roots of real schema pairs rarely share names; PDB gets its own root.
    let mut pdb = GenTree::new("PDBRecord");
    let mut gold = GoldStandard::new();
    // pir node id -> pdb node id for the copied part.
    let mut copied: Vec<usize> = vec![0; pir.len()];
    gold.add(&pir.path(0), "PDBRecord"); // the roots do correspond
    for i in 1..pir.len() {
        let pdb_parent = copied[pir.parents[i].expect("non-root has a parent")];
        let original = pir.labels[i].clone();
        let roll: f64 = rng.gen_f64();
        // 45% kept, 20% abbreviated, 15% synonym, 20% renamed away.
        let (label, is_match) = if roll < 0.45 {
            (original.clone(), true)
        } else if roll < 0.65 {
            (abbreviate(&original), true)
        } else if roll < 0.80 {
            match synonymize(&original) {
                Some(s) => (s, true),
                None => (original.clone(), true), // no synonym: keep
            }
        } else {
            let word = PDB_VOCAB[rng.gen_range(0..PDB_VOCAB.len())];
            let mut c = 1000 + i as u32;
            (fresh_label(word, &pdb.used, &mut c), false)
        };
        // Collisions (e.g. two words sharing a consonant skeleton) fall back
        // to the original label, which is unique by PIR construction.
        let label = if pdb.used.contains(&label) {
            original
        } else {
            label
        };
        let id = pdb.add(pdb_parent, label, pir.leaf_type[i]);
        copied[i] = id;
        if is_match {
            gold.add(&pir.path(i), &pdb.path(id));
        }
    }
    // Copied PIR leaves must stay leaves, or their gold pairs would turn
    // into leaf-vs-subtree comparisons the hybrid (rightly) scores low.
    let frozen: HashSet<usize> = (1..pir.len())
        .filter(|&i| pir.children[i].is_empty())
        .map(|i| copied[i])
        .collect();
    // Extend one deepest *padding-eligible* path to the published PDB depth.
    let deepest = (0..pdb.len())
        .filter(|i| !frozen.contains(i))
        .max_by_key(|&i| pdb.levels[i])
        .expect("pdb is non-empty");
    pdb.add(deepest, "Coordinate".to_owned(), "xs:decimal");
    // Pad with crystallography-only elements up to the published size.
    grow(
        &mut pdb,
        PDB_ELEMENTS,
        PDB_DEPTH,
        PDB_VOCAB,
        &frozen,
        &mut rng,
    );

    let pir_xsd = pir.to_xsd();
    let pdb_xsd = pdb.to_xsd();
    let pir_tree = SchemaTree::compile(&parse_schema(&pir_xsd).expect("generated PIR parses"))
        .expect("generated PIR compiles");
    let pdb_tree = SchemaTree::compile(&parse_schema(&pdb_xsd).expect("generated PDB parses"))
        .expect("generated PDB compiles");
    ProteinCorpus {
        pir_xsd,
        pdb_xsd,
        pir: pir_tree,
        pdb: pdb_tree,
        gold,
    }
}

/// The generated corpus (built once, cached for the process lifetime).
pub fn protein_corpus() -> &'static ProteinCorpus {
    static CACHE: OnceLock<ProteinCorpus> = OnceLock::new();
    CACHE.get_or_init(generate)
}

/// The PIR stand-in schema tree (231 elements, depth 6).
pub fn pir() -> &'static SchemaTree {
    &protein_corpus().pir
}

/// The PDB stand-in schema tree (3753 elements, depth 7).
pub fn pdb() -> &'static SchemaTree {
    &protein_corpus().pdb
}

/// The by-construction real matches between PIR and PDB.
pub fn protein_gold() -> &'static GoldStandard {
    &protein_corpus().gold
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pir_matches_table1_exactly() {
        let t = pir();
        assert_eq!(t.element_count(), PIR_ELEMENTS);
        assert_eq!(t.max_depth(), PIR_DEPTH);
    }

    #[test]
    fn pdb_matches_table1_exactly() {
        let t = pdb();
        assert_eq!(t.element_count(), PDB_ELEMENTS);
        assert_eq!(t.max_depth(), PDB_DEPTH);
    }

    #[test]
    fn generation_is_deterministic() {
        // Two independent generations must agree (the cache hides this, so
        // generate directly).
        let a = generate();
        let b = generate();
        assert_eq!(a.pir_xsd, b.pir_xsd);
        assert_eq!(a.pdb_xsd, b.pdb_xsd);
        assert_eq!(a.gold.len(), b.gold.len());
    }

    #[test]
    fn gold_is_substantial_and_well_formed() {
        let corpus = protein_corpus();
        // ~80% of 231 nodes correspond; allow generator slack.
        assert!(
            corpus.gold.len() > 150,
            "gold has {} pairs",
            corpus.gold.len()
        );
        assert!(corpus.gold.len() <= PIR_ELEMENTS);
        // Every gold path must resolve to a node in the respective tree.
        let pir_paths: std::collections::HashSet<String> = corpus
            .pir
            .iter()
            .map(|(id, _)| corpus.pir.path_labels(id).join("/"))
            .collect();
        let pdb_paths: std::collections::HashSet<String> = corpus
            .pdb
            .iter()
            .map(|(id, _)| corpus.pdb.path_labels(id).join("/"))
            .collect();
        for (s, t) in corpus.gold.iter() {
            assert!(pir_paths.contains(s), "gold source path {s} missing");
            assert!(pdb_paths.contains(t), "gold target path {t} missing");
        }
    }

    #[test]
    fn labels_are_unique_within_each_schema() {
        for tree in [pir(), pdb()] {
            let mut seen = std::collections::HashSet::new();
            for (_, node) in tree.iter() {
                assert!(
                    seen.insert(node.label.clone()),
                    "duplicate label {}",
                    node.label
                );
            }
        }
    }

    #[test]
    fn abbreviate_is_lexicon_compatible() {
        use qmatch_lexicon::name_match::looks_like_abbreviation;
        for word in ["sequence", "classification", "reference", "modification"] {
            let short = abbreviate(word);
            assert!(
                looks_like_abbreviation(&short, word),
                "{short} should abbreviate {word}"
            );
        }
        // Suffixes survive.
        assert_eq!(
            abbreviate("sequence12"),
            format!("{}12", abbreviate("sequence"))
        );
    }

    #[test]
    fn synonymize_preserves_suffix_and_uses_map() {
        assert_eq!(synonymize("gene7"), Some("locus7".to_owned()));
        assert_eq!(synonymize("protein"), Some("polypeptide".to_owned()));
        assert_eq!(synonymize("helix"), None);
    }

    #[test]
    fn synonym_map_is_backed_by_the_thesaurus() {
        use qmatch_lexicon::builtin::default_thesaurus;
        use qmatch_lexicon::thesaurus::Relation;
        let t = default_thesaurus();
        for (a, b) in SYNONYM_MAP {
            let rel = t.relation(a, b);
            assert!(
                rel != Relation::Unrelated,
                "({a}, {b}) must be related in the builtin thesaurus, got {rel:?}"
            );
        }
    }

    #[test]
    fn vocabularies_are_disjoint() {
        let pir: std::collections::HashSet<_> = PIR_VOCAB.iter().collect();
        for w in PDB_VOCAB {
            assert!(!pir.contains(w), "{w} appears in both vocabularies");
        }
    }

    #[test]
    fn vocab_has_no_internal_synonyms() {
        // If two vocabulary words were thesaurus synonyms, the generator
        // would create real matches missing from the gold standard.
        use qmatch_lexicon::builtin::default_thesaurus;
        let t = default_thesaurus();
        let spine = [
            "sequence", "feature", "fragment", "site", "position", "offset",
        ];
        let all: Vec<&str> = PIR_VOCAB.iter().copied().chain(spine).collect();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert!(
                    !t.are_synonyms(a, b),
                    "PIR vocabulary words {a:?} and {b:?} are synonyms"
                );
            }
        }
        // And PDB padding words must not be synonyms of PIR words either.
        for a in &all {
            for b in PDB_VOCAB {
                assert!(
                    !t.are_synonyms(a, b),
                    "cross-vocabulary synonyms {a:?} / {b:?}"
                );
            }
        }
    }

    #[test]
    fn generated_xsd_exercises_the_real_pipeline() {
        let corpus = protein_corpus();
        assert!(corpus.pir_xsd.contains("xs:schema"));
        assert!(corpus.pdb_xsd.len() > corpus.pir_xsd.len() * 8);
        // Both already compiled through parse_schema + SchemaTree::compile
        // in generate(); spot check roots.
        assert_eq!(corpus.pir.root().label, "ProteinEntry");
        assert_eq!(corpus.pdb.root().label, "PDBRecord");
    }
}
