//! Table 1 — characteristics of the test schemas.

use qmatch_xsd::SchemaTree;

/// One row of Table 1: the published numbers next to the reconstruction's
/// actual numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// Schema name as printed in the paper.
    pub name: &'static str,
    /// Published element count.
    pub paper_elements: usize,
    /// Published max depth.
    pub paper_depth: u32,
    /// Element count of the reconstruction.
    pub actual_elements: usize,
    /// Max depth of the reconstruction.
    pub actual_depth: u32,
}

impl Table1Row {
    fn of(name: &'static str, paper: (usize, u32), tree: &SchemaTree) -> Table1Row {
        Table1Row {
            name,
            paper_elements: paper.0,
            paper_depth: paper.1,
            actual_elements: tree.element_count(),
            actual_depth: tree.max_depth(),
        }
    }

    /// True when the reconstruction matches the published numbers exactly.
    pub fn matches_paper(&self) -> bool {
        self.paper_elements == self.actual_elements && self.paper_depth == self.actual_depth
    }
}

/// Builds all eight Table 1 rows from the reconstructed corpus.
pub fn table1_rows() -> Vec<Table1Row> {
    use crate::{corpus, synth};
    vec![
        Table1Row::of("PO1", (10, 3), &corpus::po1()),
        Table1Row::of("PO2", (9, 3), &corpus::po2()),
        Table1Row::of("Article", (18, 3), &corpus::article()),
        Table1Row::of("Book", (6, 2), &corpus::book()),
        Table1Row::of("DCMDItem", (38, 2), &corpus::dcmd_item()),
        Table1Row::of("DCMDOrd", (53, 3), &corpus::dcmd_ord()),
        Table1Row::of("PIR", (231, 6), synth::pir()),
        Table1Row::of("PDB", (3753, 7), synth::pdb()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_row_matches_the_paper() {
        for row in table1_rows() {
            assert!(
                row.matches_paper(),
                "{}: paper ({}, {}) vs actual ({}, {})",
                row.name,
                row.paper_elements,
                row.paper_depth,
                row.actual_elements,
                row.actual_depth
            );
        }
    }

    #[test]
    fn rows_cover_all_eight_schemas_in_paper_order() {
        let names: Vec<_> = table1_rows().iter().map(|r| r.name).collect();
        assert_eq!(
            names,
            ["PO1", "PO2", "Article", "Book", "DCMDItem", "DCMDOrd", "PIR", "PDB"]
        );
    }
}
