//! Hand-written corpus schemas (PO, Books, DCMD domains).
//!
//! Each schema is an embedded XSD source plus a lazily-compiled
//! [`SchemaTree`]. Element counts and maximum depths are pinned to the
//! paper's Table 1 by unit tests; PO1 is exactly the paper's Figure 1.

use qmatch_xsd::{parse_schema, SchemaTree};
use std::sync::OnceLock;

/// Parses and compiles an embedded schema; panics on corpus bugs (the tests
/// parse every schema, so a panic here means the crate itself is broken).
fn compile(src: &str) -> SchemaTree {
    let schema = parse_schema(src).expect("embedded corpus schema must parse");
    SchemaTree::compile(&schema).expect("embedded corpus schema must compile")
}

macro_rules! corpus_schema {
    ($(#[$doc:meta])* $name:ident, $xsd_name:ident, $src:expr) => {
        $(#[$doc])*
        pub fn $name() -> SchemaTree {
            static CACHE: OnceLock<SchemaTree> = OnceLock::new();
            CACHE.get_or_init(|| compile($src)).clone()
        }

        /// The XSD source text for the same schema.
        pub fn $xsd_name() -> &'static str {
            $src
        }
    };
}

corpus_schema!(
    /// PO1 — the paper's Figure 1 (PO schema): 10 elements, max depth 3.
    po1,
    po1_xsd,
    r#"<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="PO">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="OrderNo" type="xs:integer"/>
        <xs:element name="PurchaseInfo">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="BillingAddr" type="xs:string"/>
              <xs:element name="ShippingAddr" type="xs:string"/>
              <xs:element name="Lines">
                <xs:complexType>
                  <xs:sequence>
                    <xs:element name="Item" type="xs:string"/>
                    <xs:element name="Quantity" type="xs:positiveInteger"/>
                    <xs:element name="UnitOfMeasure" type="xs:string"/>
                  </xs:sequence>
                </xs:complexType>
              </xs:element>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
        <xs:element name="PurchaseDate" type="xs:date"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>"#
);

corpus_schema!(
    /// PO2 — the second purchase-order test schema: 9 elements, max depth 3.
    po2,
    po2_xsd,
    r#"<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="PurchaseOrder">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="OrderNo" type="xs:integer"/>
        <xs:element name="Date" type="xs:date"/>
        <xs:element name="BillTo" type="xs:string"/>
        <xs:element name="ShipTo" type="xs:string"/>
        <xs:element name="Items">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="Item" maxOccurs="unbounded">
                <xs:complexType>
                  <xs:sequence>
                    <xs:element name="Qty" type="xs:positiveInteger"/>
                    <xs:element name="UOM" type="xs:string"/>
                  </xs:sequence>
                </xs:complexType>
              </xs:element>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>"#
);

corpus_schema!(
    /// Article — bibliographic article schema: 18 elements, max depth 3.
    article,
    article_xsd,
    r#"<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="Article">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="Title" type="xs:string"/>
        <xs:element name="Authors">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="Author" maxOccurs="unbounded">
                <xs:complexType>
                  <xs:sequence>
                    <xs:element name="FirstName" type="xs:string"/>
                    <xs:element name="LastName" type="xs:string"/>
                    <xs:element name="Affiliation" type="xs:string" minOccurs="0"/>
                  </xs:sequence>
                </xs:complexType>
              </xs:element>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
        <xs:element name="Journal">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="Name" type="xs:string"/>
              <xs:element name="Volume" type="xs:positiveInteger"/>
              <xs:element name="Year" type="xs:gYear"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
        <xs:element name="Abstract" type="xs:string" minOccurs="0"/>
        <xs:element name="Keywords">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="Keyword" type="xs:string" maxOccurs="unbounded"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
        <xs:element name="Pages">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="From" type="xs:positiveInteger"/>
              <xs:element name="To" type="xs:positiveInteger"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
        <xs:element name="DOI" type="xs:anyURI" minOccurs="0"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>"#
);

corpus_schema!(
    /// Book — compact book schema: 6 elements, max depth 2.
    book,
    book_xsd,
    r#"<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="Book">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="Title" type="xs:string"/>
        <xs:element name="Author">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="Name" type="xs:string"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
        <xs:element name="Publisher" type="xs:string"/>
        <xs:element name="Year" type="xs:gYear"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>"#
);

corpus_schema!(
    /// DCMDItem — XBench DC/MD catalog-item schema: 38 elements, max depth 2.
    dcmd_item,
    dcmd_item_xsd,
    r#"<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="Item">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="ItemID" type="xs:ID"/>
        <xs:element name="Title" type="xs:string"/>
        <xs:element name="Description" type="xs:string" minOccurs="0"/>
        <xs:element name="Category" type="xs:string"/>
        <xs:element name="Brand" type="xs:string" minOccurs="0"/>
        <xs:element name="SKU" type="xs:token"/>
        <xs:element name="Pricing">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="ListPrice" type="xs:decimal"/>
              <xs:element name="DiscountPrice" type="xs:decimal" minOccurs="0"/>
              <xs:element name="Currency" type="xs:string"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
        <xs:element name="Supplier">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="SupplierID" type="xs:ID"/>
              <xs:element name="SupplierName" type="xs:string"/>
              <xs:element name="SupplierPhone" type="xs:string" minOccurs="0"/>
              <xs:element name="SupplierEmail" type="xs:string" minOccurs="0"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
        <xs:element name="Dimensions">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="Width" type="xs:decimal"/>
              <xs:element name="Height" type="xs:decimal"/>
              <xs:element name="Depth" type="xs:decimal"/>
              <xs:element name="Weight" type="xs:decimal"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
        <xs:element name="Stock">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="Quantity" type="xs:nonNegativeInteger"/>
              <xs:element name="Warehouse" type="xs:string"/>
              <xs:element name="ReorderLevel" type="xs:nonNegativeInteger"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
        <xs:element name="Shipping">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="ShipMethod" type="xs:string"/>
              <xs:element name="ShipCost" type="xs:decimal"/>
              <xs:element name="ShipDays" type="xs:positiveInteger"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
        <xs:element name="Dates">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="ReleaseDate" type="xs:date"/>
              <xs:element name="DiscontinuedDate" type="xs:date" minOccurs="0"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
        <xs:element name="Reviews">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="Rating" type="xs:decimal"/>
              <xs:element name="ReviewCount" type="xs:nonNegativeInteger"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
        <xs:element name="Attributes">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="Color" type="xs:string" minOccurs="0"/>
              <xs:element name="Size" type="xs:string" minOccurs="0"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>"#
);

corpus_schema!(
    /// DCMDOrd — XBench DC/MD order schema: 53 elements, max depth 3. Each
    /// order line embeds the catalog item's descriptive fields, as the
    /// XBench document classes do, which is what gives this pair the
    /// largest manual match set of the small domains.
    dcmd_ord,
    dcmd_ord_xsd,
    r#"<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="Order">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="OrderID" type="xs:ID"/>
        <xs:element name="OrderDate" type="xs:date"/>
        <xs:element name="Status" type="xs:string"/>
        <xs:element name="Currency" type="xs:string"/>
        <xs:element name="Channel" type="xs:string" minOccurs="0"/>
        <xs:element name="Gift" type="xs:boolean" minOccurs="0"/>
        <xs:element name="Priority" type="xs:string" minOccurs="0"/>
        <xs:element name="Notes" type="xs:string" minOccurs="0"/>
        <xs:element name="Customer">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="CustomerID" type="xs:ID"/>
              <xs:element name="CustomerName" type="xs:string"/>
              <xs:element name="Email" type="xs:string"/>
              <xs:element name="Phone" type="xs:string" minOccurs="0"/>
              <xs:element name="Address">
                <xs:complexType>
                  <xs:sequence>
                    <xs:element name="Street" type="xs:string"/>
                    <xs:element name="City" type="xs:string"/>
                    <xs:element name="State" type="xs:string"/>
                    <xs:element name="Zip" type="xs:string"/>
                    <xs:element name="Country" type="xs:string"/>
                  </xs:sequence>
                </xs:complexType>
              </xs:element>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
        <xs:element name="Payment">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="Method" type="xs:string"/>
              <xs:element name="CardNumber" type="xs:string" minOccurs="0"/>
              <xs:element name="ExpiryDate" type="xs:gYearMonth" minOccurs="0"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
        <xs:element name="ShipInfo">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="ShipMethod" type="xs:string"/>
              <xs:element name="ShipCost" type="xs:decimal"/>
              <xs:element name="ShipDays" type="xs:positiveInteger"/>
              <xs:element name="DeliveryDate" type="xs:date" minOccurs="0"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
        <xs:element name="Lines">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="Line" maxOccurs="unbounded">
                <xs:complexType>
                  <xs:sequence>
                    <xs:element name="ItemID" type="xs:IDREF"/>
                    <xs:element name="Title" type="xs:string"/>
                    <xs:element name="Description" type="xs:string" minOccurs="0"/>
                    <xs:element name="Category" type="xs:string"/>
                    <xs:element name="Brand" type="xs:string" minOccurs="0"/>
                    <xs:element name="SKU" type="xs:token"/>
                    <xs:element name="UnitPrice" type="xs:decimal"/>
                    <xs:element name="Discount" type="xs:decimal" minOccurs="0"/>
                    <xs:element name="Quantity" type="xs:positiveInteger"/>
                    <xs:element name="Weight" type="xs:decimal" minOccurs="0"/>
                    <xs:element name="Color" type="xs:string" minOccurs="0"/>
                    <xs:element name="Size" type="xs:string" minOccurs="0"/>
                    <xs:element name="LineTotal" type="xs:decimal"/>
                  </xs:sequence>
                </xs:complexType>
              </xs:element>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
        <xs:element name="Totals">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="Subtotal" type="xs:decimal"/>
              <xs:element name="Tax" type="xs:decimal"/>
              <xs:element name="ShippingTotal" type="xs:decimal"/>
              <xs:element name="GrandTotal" type="xs:decimal"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
        <xs:element name="Invoice">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="InvoiceNo" type="xs:token"/>
              <xs:element name="InvoiceDate" type="xs:date"/>
              <xs:element name="DueDate" type="xs:date"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>"#
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn po1_matches_table1_and_figure1() {
        let t = po1();
        assert_eq!(t.element_count(), 10);
        assert_eq!(t.max_depth(), 3);
        assert_eq!(t.root().label, "PO");
        // Figure 1 structure spot checks.
        let lines = t.node(t.find_by_label("Lines").unwrap());
        assert_eq!(lines.level, 2);
        assert_eq!(lines.children.len(), 3);
    }

    #[test]
    fn po2_matches_table1() {
        let t = po2();
        assert_eq!(t.element_count(), 9);
        assert_eq!(t.max_depth(), 3);
        assert_eq!(t.root().label, "PurchaseOrder");
    }

    #[test]
    fn article_matches_table1() {
        let t = article();
        assert_eq!(t.element_count(), 18);
        assert_eq!(t.max_depth(), 3);
    }

    #[test]
    fn book_matches_table1() {
        let t = book();
        assert_eq!(t.element_count(), 6);
        assert_eq!(t.max_depth(), 2);
    }

    #[test]
    fn dcmd_item_matches_table1() {
        let t = dcmd_item();
        assert_eq!(t.element_count(), 38);
        assert_eq!(t.max_depth(), 2);
    }

    #[test]
    fn dcmd_ord_matches_table1() {
        let t = dcmd_ord();
        assert_eq!(t.element_count(), 53);
        assert_eq!(t.max_depth(), 3);
    }

    #[test]
    fn cached_trees_are_stable() {
        assert_eq!(po1(), po1());
        assert_eq!(dcmd_ord().len(), dcmd_ord().len());
    }

    #[test]
    fn xsd_sources_parse_standalone() {
        for src in [
            po1_xsd(),
            po2_xsd(),
            article_xsd(),
            book_xsd(),
            dcmd_item_xsd(),
            dcmd_ord_xsd(),
        ] {
            assert!(qmatch_xsd::parse_schema(src).is_ok());
        }
    }

    #[test]
    fn paper_fig4_element_totals_hold_for_small_pairs() {
        // Figure 4's x axis: 19, 24, 91 (and 3984 from the protein pair).
        assert_eq!(po1().element_count() + po2().element_count(), 19);
        assert_eq!(article().element_count() + book().element_count(), 24);
        assert_eq!(dcmd_item().element_count() + dcmd_ord().element_count(), 91);
    }
}
