//! The paper's illustration schemas: Figures 1/2 (the worked PO example of
//! §2.2) and Figures 7/8 (the structurally-identical, linguistically-
//! disparate pair behind Figure 9).

use qmatch_xsd::SchemaTree;

/// Figure 1 — the `PO` schema. Identical to [`crate::corpus::po1`]; kept as
/// an alias so experiment code can reference figures by number.
pub fn po_fig1() -> SchemaTree {
    crate::corpus::po1()
}

/// Figure 2 — the `Purchase Order` schema as drawn: `Items` holds `Item#`,
/// `Qty`, `UOM` directly (one level shallower than PO1's `Lines` subtree,
/// which is what makes the §2.2 worked example's level axis relaxed).
pub fn purchase_order_fig2() -> SchemaTree {
    use qmatch_xsd::{BuiltinType, DataType};
    let b = |t: BuiltinType| DataType::Builtin(t);
    SchemaTree::from_labels_typed(
        "PurchaseOrder",
        &[
            ("PurchaseOrder", None, DataType::Complex(None)),
            // §2.1 assumes OrderNo carries type=integer in both schemas.
            ("OrderNo", Some(0), b(BuiltinType::Integer)),
            ("BillTo", Some(0), b(BuiltinType::String)),
            ("ShipTo", Some(0), b(BuiltinType::String)),
            ("Items", Some(0), DataType::Complex(None)),
            ("Item#", Some(4), b(BuiltinType::String)),
            ("Qty", Some(4), b(BuiltinType::PositiveInteger)),
            ("UOM", Some(4), b(BuiltinType::String)),
            ("Date", Some(0), b(BuiltinType::Date)),
        ],
    )
}

/// Figure 7 — the `Library` schema.
pub fn library_fig7() -> SchemaTree {
    SchemaTree::from_labels(
        "Library",
        &[
            ("Library", None),
            ("Title", Some(0)),
            ("Book", Some(0)),
            ("number", Some(2)),
            ("character", Some(2)),
            ("Writer", Some(2)),
        ],
    )
}

/// Figure 8 — the `human` schema: same shape as Figure 7, unrelated labels.
pub fn human_fig8() -> SchemaTree {
    SchemaTree::from_labels(
        "human",
        &[
            ("human", None),
            ("head", Some(0)),
            ("body", Some(0)),
            ("hands", Some(2)),
            ("man", Some(2)),
            ("legs", Some(2)),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_shape() {
        let t = purchase_order_fig2();
        assert_eq!(t.element_count(), 9);
        assert_eq!(t.max_depth(), 2);
        let items = t.node(t.find_by_label("Items").unwrap());
        assert_eq!(items.children.len(), 3);
        assert_eq!(items.level, 1);
    }

    #[test]
    fn figures_7_and_8_are_isomorphic() {
        let lib = library_fig7();
        let hum = human_fig8();
        assert_eq!(lib.len(), hum.len());
        assert_eq!(lib.max_depth(), hum.max_depth());
        for ((_, a), (_, b)) in lib.iter().zip(hum.iter()) {
            assert_eq!(a.level, b.level);
            assert_eq!(a.children.len(), b.children.len());
            assert_eq!(a.properties.order, b.properties.order);
        }
    }

    #[test]
    fn figure1_is_po1() {
        assert_eq!(po_fig1(), crate::corpus::po1());
    }
}
