#![warn(missing_docs)]

//! A tiny, dependency-free, deterministic pseudo-random number generator.
//!
//! The workspace builds in fully offline environments, so it cannot pull in
//! the `rand` crate; this module provides the small slice of its API the
//! repository actually uses — seeding from a `u64`, uniform integers over
//! ranges, and uniform floats in `[0, 1)` — on top of xoshiro256++ with a
//! SplitMix64 seed expander. Output is stable across platforms and releases:
//! the synthetic corpora (`qmatch-datasets`) and the randomized property
//! tests both depend on that stability.
//!
//! This is NOT a cryptographic generator; it is for reproducible test data
//! only.

use std::ops::{Range, RangeInclusive};

/// A small, fast, deterministic RNG (xoshiro256++).
///
/// The name mirrors `rand::rngs::SmallRng` so call sites read familiarly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

/// SplitMix64 step, used to expand a 64-bit seed into the full state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SmallRng {
    /// Seeds the generator from a single `u64` (SplitMix64 expansion, as
    /// recommended by the xoshiro authors). Equal seeds produce equal
    /// streams on every platform.
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        let mut sm = seed;
        SmallRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next raw 64 random bits (xoshiro256++ output function).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 high bits of one output).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform value from a half-open (`lo..hi`) or inclusive (`lo..=hi`)
    /// range. Panics on empty ranges, like `rand`.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformSample,
        R: IntoBounds<T>,
    {
        let (lo, hi_inclusive) = range.into_bounds();
        T::sample(self, lo, hi_inclusive)
    }

    /// An unbiased uniform `u64` in `[0, bound]` (inclusive) via rejection
    /// of the partial top interval.
    fn uniform_u64_inclusive(&mut self, bound: u64) -> u64 {
        if bound == u64::MAX {
            return self.next_u64();
        }
        let span = bound + 1;
        // r = 2^64 mod span, computed without 128-bit arithmetic.
        let r = (u64::MAX % span + 1) % span;
        if r == 0 {
            // span divides 2^64: plain modulo is already unbiased.
            return self.next_u64() % span;
        }
        // Accept v in [0, 2^64 - r), the largest prefix holding an integral
        // number of spans.
        let zone = 0u64.wrapping_sub(r);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }
}

/// Integer types [`SmallRng::gen_range`] can sample uniformly.
pub trait UniformSample: Copy + PartialOrd {
    /// Uniform sample in `[lo, hi]` (inclusive).
    fn sample(rng: &mut SmallRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample(rng: &mut SmallRng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u64) - (lo as u64);
                lo + rng.uniform_u64_inclusive(span) as $t
            }
        }
    )*};
}

macro_rules! impl_uniform_signed {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample(rng: &mut SmallRng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                (lo as i64).wrapping_add(rng.uniform_u64_inclusive(span) as i64) as $t
            }
        }
    )*};
}

impl_uniform_unsigned!(u8, u16, u32, u64, usize);
impl_uniform_signed!(i8, i16, i32, i64, isize);

impl UniformSample for f64 {
    fn sample(rng: &mut SmallRng, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "empty range in gen_range");
        lo + rng.gen_f64() * (hi - lo)
    }
}

/// Range arguments accepted by [`SmallRng::gen_range`].
pub trait IntoBounds<T> {
    /// `(low, high_inclusive)` bounds of the range.
    fn into_bounds(self) -> (T, T);
}

impl<T: UniformSample + Dec> IntoBounds<T> for Range<T> {
    fn into_bounds(self) -> (T, T) {
        (self.start, self.end.dec())
    }
}

impl<T: UniformSample> IntoBounds<T> for RangeInclusive<T> {
    fn into_bounds(self) -> (T, T) {
        self.into_inner()
    }
}

/// Decrement by one unit, for converting `lo..hi` to inclusive bounds.
pub trait Dec {
    /// The previous representable value.
    fn dec(self) -> Self;
}

macro_rules! impl_dec_int {
    ($($t:ty),*) => {$(
        impl Dec for $t {
            fn dec(self) -> Self {
                self.checked_sub(1).expect("empty range in gen_range")
            }
        }
    )*};
}

impl_dec_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Dec for f64 {
    fn dec(self) -> Self {
        // Half-open float ranges: gen_f64 never returns 1.0, so the upper
        // bound is effectively exclusive already.
        self
    }
}

/// Fisher–Yates shuffle (deterministic given the RNG state).
pub fn shuffle<T>(rng: &mut SmallRng, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_produce_equal_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn stream_is_pinned_across_releases() {
        // The synthetic corpora depend on this exact stream; changing the
        // generator invalidates every pinned corpus statistic.
        let mut rng = SmallRng::seed_from_u64(0x51AC_2005);
        assert_eq!(rng.next_u64(), 0xFC92_79C3_604A_9059);
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let a: usize = rng.gen_range(0..17);
            assert!(a < 17);
            let b: u32 = rng.gen_range(3..=9);
            assert!((3..=9).contains(&b));
            let c: i64 = rng.gen_range(-50..=-10);
            assert!((-50..=-10).contains(&c));
            let d: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&d));
        }
    }

    #[test]
    fn all_residues_are_reachable() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn one_element_range_is_constant() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10 {
            assert_eq!(rng.gen_range(5..6usize), 5);
            assert_eq!(rng.gen_range(5..=5usize), 5);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(3);
        let _: usize = rng.gen_range(5..5);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..32).collect();
        shuffle(&mut rng, &mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, (0..32).collect::<Vec<_>>(), "shuffle changed the order");
    }

    #[test]
    fn gen_bool_probability_is_sane() {
        let mut rng = SmallRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
