#![warn(missing_docs)]

//! Deterministic, structure-aware fuzzing harness for the QMatch ingestion
//! pipeline.
//!
//! No external fuzzing engine: case generation is driven by the in-repo
//! [`qmatch_prng::SmallRng`], so any failure reproduces from `--seed` and
//! the case index alone, on any platform. Each run mixes three input modes:
//!
//! - **valid** (~40%): structure-aware generated schemas ([`gen`]) that
//!   must pass the round-trip and match-equivalence oracles;
//! - **byte-mutated** (~40%): valid schemas corrupted at the byte level
//!   ([`mutate::mutate_bytes`]) that must fail cleanly or still pass;
//! - **structured** (~20%): schema-aware corruptions
//!   ([`mutate::mutate_structure`]) that target the XSD layer.
//!
//! The oracles live in [`oracle`]; failing inputs are shrunk by
//! [`minimize`] and written to a repro directory.

pub mod gen;
pub mod minimize;
pub mod mutate;
pub mod oracle;

use oracle::{check_case, CaseOutcome, OracleFailure};
use qmatch_core::{MatchConfig, MatchSession};
use qmatch_prng::SmallRng;
use qmatch_xml::IngestLimits;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Odd constant (golden-ratio based) decorrelating per-case seeds.
const CASE_SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// A fuzzing run's configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; every case derives its own RNG from this and its index.
    pub seed: u64,
    /// Number of cases to attempt.
    pub cases: u64,
    /// Optional wall-clock budget. When set, the run stops early once
    /// exceeded — which makes the summary line timing-dependent, so CI
    /// determinism checks should leave it unset.
    pub budget_ms: Option<u64>,
    /// Where to write minimized repro files (created on first failure).
    pub repro_dir: PathBuf,
    /// Ingestion limits applied to every case.
    pub limits: IngestLimits,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0,
            cases: 1000,
            budget_ms: None,
            repro_dir: PathBuf::from("fuzz-repro"),
            limits: IngestLimits::default(),
        }
    }
}

/// One recorded failure.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Index of the failing case.
    pub case: u64,
    /// Which oracle failed, with its message.
    pub failure: OracleFailure,
    /// The minimized failing input.
    pub minimized: String,
    /// Repro file path, if writing it succeeded.
    pub repro_path: Option<PathBuf>,
}

/// Aggregated result of a run.
#[derive(Debug, Clone, Default)]
pub struct FuzzSummary {
    /// The master seed the run used.
    pub seed: u64,
    /// Cases requested.
    pub cases: u64,
    /// Cases actually executed (less than `cases` only under `--budget-ms`).
    pub executed: u64,
    /// Cases per input mode.
    pub valid: u64,
    /// Byte-mutated cases.
    pub mutated: u64,
    /// Structure-mutated cases.
    pub structured: u64,
    /// Cases whose input parsed into a schema.
    pub parse_ok: u64,
    /// Cases rejected with a typed error.
    pub parse_err: u64,
    /// Round-trip oracle executions.
    pub round_trips: u64,
    /// Match-equivalence oracle executions.
    pub match_checks: u64,
    /// Panics caught.
    pub crashers: u64,
    /// Non-panic oracle violations.
    pub violations: u64,
    /// Details of every failure, in case order.
    pub failures: Vec<Failure>,
}

impl FuzzSummary {
    /// The deterministic one-line summary (no timing — that goes to stderr).
    pub fn line(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "qmatch-fuzz: seed={} cases={} executed={} valid={} mutated={} structured={} \
             parse_ok={} parse_err={} round_trips={} match_checks={} crashers={} violations={}",
            self.seed,
            self.cases,
            self.executed,
            self.valid,
            self.mutated,
            self.structured,
            self.parse_ok,
            self.parse_err,
            self.round_trips,
            self.match_checks,
            self.crashers,
            self.violations
        );
        s
    }

    /// True when no crasher or violation was observed.
    pub fn is_clean(&self) -> bool {
        self.crashers == 0 && self.violations == 0
    }
}

/// The input modes a case can take.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Valid,
    ByteMutated,
    Structured,
}

fn pick_mode(rng: &mut SmallRng) -> Mode {
    match rng.gen_range(0..10u32) {
        0..=3 => Mode::Valid,
        4..=7 => Mode::ByteMutated,
        _ => Mode::Structured,
    }
}

/// Builds the input for case `i` of a run seeded with `seed`. Exposed so a
/// failure can be regenerated without re-running the whole campaign.
pub fn case_input(seed: u64, i: u64) -> String {
    let mut rng = case_rng(seed, i);
    let mode = pick_mode(&mut rng);
    build_input(&mut rng, mode)
}

fn case_rng(seed: u64, i: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ i.wrapping_mul(CASE_SEED_MIX))
}

fn build_input(rng: &mut SmallRng, mode: Mode) -> String {
    match mode {
        Mode::Valid => gen::gen_schema(rng).text,
        Mode::ByteMutated => {
            let generated = gen::gen_schema(rng);
            mutate::mutate_bytes(rng, &generated.text)
        }
        Mode::Structured => {
            let generated = gen::gen_schema(rng);
            mutate::mutate_structure(rng, &generated)
        }
    }
}

/// Runs a fuzzing campaign. Prints nothing; the caller decides how to
/// report the returned [`FuzzSummary`].
pub fn run(config: &FuzzConfig) -> FuzzSummary {
    let match_config = MatchConfig::builder()
        .build()
        .expect("the default match configuration is valid");
    let session = MatchSession::new(match_config);
    let mut summary = FuzzSummary {
        seed: config.seed,
        cases: config.cases,
        ..FuzzSummary::default()
    };
    let started = Instant::now();

    // Expected panics (the no-panic oracle catches them) would spam stderr
    // through the default hook; silence it for the duration of the run.
    let previous_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    for i in 0..config.cases {
        if let Some(budget) = config.budget_ms {
            if started.elapsed().as_millis() as u64 > budget {
                break;
            }
        }
        let mut rng = case_rng(config.seed, i);
        let mode = pick_mode(&mut rng);
        match mode {
            Mode::Valid => summary.valid += 1,
            Mode::ByteMutated => summary.mutated += 1,
            Mode::Structured => summary.structured += 1,
        }
        let input = build_input(&mut rng, mode);
        summary.executed += 1;

        match check_case(&input, &session, &config.limits) {
            Ok(outcome) => record_outcome(&mut summary, outcome),
            Err(failure) => {
                match failure {
                    OracleFailure::Panic(_) => summary.crashers += 1,
                    _ => summary.violations += 1,
                }
                let minimized = shrink(&input, &failure, &session, &config.limits);
                let repro_path =
                    write_repro(&config.repro_dir, config.seed, i, &failure, &minimized);
                summary.failures.push(Failure {
                    case: i,
                    failure,
                    minimized,
                    repro_path,
                });
            }
        }
    }

    std::panic::set_hook(previous_hook);
    summary
}

fn record_outcome(summary: &mut FuzzSummary, outcome: CaseOutcome) {
    if outcome.parsed {
        summary.parse_ok += 1;
    } else {
        summary.parse_err += 1;
    }
    if outcome.round_tripped {
        summary.round_trips += 1;
    }
    if outcome.matched {
        summary.match_checks += 1;
    }
}

/// Shrinks a failing input while the same oracle keeps failing.
fn shrink(
    input: &str,
    failure: &OracleFailure,
    session: &MatchSession,
    limits: &IngestLimits,
) -> String {
    let tag = failure.tag();
    minimize::minimize(
        input,
        &|candidate: &str| matches!(check_case(candidate, session, limits), Err(f) if f.tag() == tag),
    )
}

fn write_repro(
    dir: &Path,
    seed: u64,
    case: u64,
    failure: &OracleFailure,
    minimized: &str,
) -> Option<PathBuf> {
    std::fs::create_dir_all(dir).ok()?;
    let path = dir.join(format!("{}-seed{}-case{}.xsd", failure.tag(), seed, case));
    let header = format!(
        "<!-- qmatch-fuzz repro: oracle={} seed={} case={}\n     regenerate: qmatch-fuzz --seed {} --cases {}\n     failure: {:?} -->\n",
        failure.tag(),
        seed,
        case,
        seed,
        case + 1,
        failure,
    );
    std::fs::write(&path, format!("{header}{minimized}")).ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_is_deterministic_and_clean() {
        let config = FuzzConfig {
            seed: 42,
            cases: 150,
            repro_dir: std::env::temp_dir().join("qmatch-fuzz-test-repro"),
            ..FuzzConfig::default()
        };
        let a = run(&config);
        let b = run(&config);
        assert_eq!(a.line(), b.line());
        assert!(a.is_clean(), "failures: {:?}", a.failures);
        assert_eq!(a.executed, 150);
        // All three modes and all three oracles exercised.
        assert!(a.valid > 0 && a.mutated > 0 && a.structured > 0);
        assert!(a.round_trips > 0 && a.match_checks > 0 && a.parse_err > 0);
    }

    #[test]
    fn case_inputs_regenerate_identically() {
        assert_eq!(case_input(7, 3), case_input(7, 3));
        assert_ne!(case_input(7, 3), case_input(7, 4));
    }

    #[test]
    fn budget_stops_early() {
        let config = FuzzConfig {
            seed: 1,
            cases: u64::MAX / 2,
            budget_ms: Some(50),
            repro_dir: std::env::temp_dir().join("qmatch-fuzz-test-repro"),
            ..FuzzConfig::default()
        };
        let summary = run(&config);
        assert!(summary.executed < summary.cases);
    }

    #[test]
    fn summary_line_is_stable_format() {
        let summary = FuzzSummary {
            seed: 9,
            cases: 10,
            executed: 10,
            ..FuzzSummary::default()
        };
        let line = summary.line();
        assert!(line.starts_with("qmatch-fuzz: seed=9 cases=10 executed=10"));
        assert!(line.ends_with("crashers=0 violations=0"));
    }
}
