//! Crasher minimization: greedy chunk removal (ddmin-lite).
//!
//! Given a failing input and a predicate that re-checks the failure, try
//! removing progressively smaller chunks while the failure still
//! reproduces. Deterministic and bounded — the point is a readable repro,
//! not a globally minimal one.

/// Minimizes `input` while `still_fails` holds. The predicate receives a
/// candidate and must return `true` when the *same* failure reproduces.
///
/// Chunks are removed at byte granularity; candidates are re-decoded
/// lossily, since a mutated input need not slice at char boundaries.
pub fn minimize(input: &str, still_fails: &dyn Fn(&str) -> bool) -> String {
    let mut current: Vec<u8> = input.as_bytes().to_vec();
    // Cap total predicate calls so a pathological case cannot stall a run.
    let mut budget: u32 = 2_000;
    let mut chunk = (current.len() / 2).max(1);
    while chunk >= 1 && budget > 0 {
        let mut start = 0;
        let mut removed_any = false;
        while start < current.len() && budget > 0 {
            let end = (start + chunk).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            budget -= 1;
            if still_fails(&String::from_utf8_lossy(&candidate)) {
                current = candidate;
                removed_any = true;
                // Keep `start` where it is: the next chunk slid into place.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !removed_any {
            break;
        }
        chunk /= 2;
    }
    String::from_utf8_lossy(&current).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_everything_but_the_needle() {
        let haystack = format!("{}NEEDLE{}", "x".repeat(500), "y".repeat(500));
        let minimized = minimize(&haystack, &|s: &str| s.contains("NEEDLE"));
        assert_eq!(minimized, "NEEDLE");
    }

    #[test]
    fn preserves_failure_when_nothing_removable() {
        let minimized = minimize("AB", &|s: &str| s == "AB");
        assert_eq!(minimized, "AB");
    }

    #[test]
    fn empty_input_stays_empty() {
        assert_eq!(minimize("", &|_| true), "");
    }
}
