//! The three fuzzing oracles.
//!
//! 1. **No-panic**: every stage of the pipeline (parse → resolve → compile →
//!    match) returns `Ok` or a typed `Err` — a panic is a crasher.
//! 2. **Round-trip**: a schema that parses must survive
//!    `write_schema` → re-parse and compare equal (the writer and parser
//!    agree on the object model).
//! 3. **Parallel/sequential equivalence**: `MatchSession::hybrid` and
//!    `MatchSession::hybrid_sequential` must produce bit-identical
//!    similarity matrices and total QoM for the same prepared pair.

use qmatch_core::MatchSession;
use qmatch_xml::IngestLimits;
use qmatch_xsd::{parse_schema_with_limits, write_schema, Schema, SchemaTree};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Why a fuzz case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleFailure {
    /// The pipeline panicked (message extracted from the payload).
    Panic(String),
    /// write → re-parse diverged from the original schema.
    RoundTrip(String),
    /// Parallel and sequential hybrid matching disagreed.
    ParSeqDivergence(String),
}

impl OracleFailure {
    /// Short machine-readable tag (used in repro file names).
    pub fn tag(&self) -> &'static str {
        match self {
            OracleFailure::Panic(_) => "panic",
            OracleFailure::RoundTrip(_) => "roundtrip",
            OracleFailure::ParSeqDivergence(_) => "parseq",
        }
    }

    /// True for a crash (panic) as opposed to a semantic oracle violation.
    pub fn is_crash(&self) -> bool {
        matches!(self, OracleFailure::Panic(_))
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// What a passing case did, for the run statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaseOutcome {
    /// The input parsed into a schema.
    pub parsed: bool,
    /// The round-trip oracle ran.
    pub round_tripped: bool,
    /// The match-equivalence oracle ran.
    pub matched: bool,
}

/// Trees above this size skip the match oracle (quadratic cost; the point
/// is equivalence, not throughput on big trees — the bench covers those).
const MATCH_ORACLE_MAX_NODES: usize = 96;

/// Runs all applicable oracles on one input. `Ok` carries which oracles ran;
/// `Err` is a crasher or violation.
pub fn check_case(
    input: &str,
    session: &MatchSession,
    limits: &IngestLimits,
) -> Result<CaseOutcome, OracleFailure> {
    // Oracle 1: no stage may panic. Typed errors end the case cleanly.
    let parsed = catch_unwind(AssertUnwindSafe(|| parse_schema_with_limits(input, limits)));
    let schema: Schema = match parsed {
        Err(payload) => return Err(OracleFailure::Panic(panic_message(payload))),
        Ok(Err(_)) => return Ok(CaseOutcome::default()),
        Ok(Ok(schema)) => schema,
    };

    // Oracle 2 and 3 run inside catch_unwind too: a panic anywhere past
    // parsing is just as much a crasher.
    let rest = catch_unwind(AssertUnwindSafe(|| {
        let rendered = write_schema(&schema);
        let reparsed = match parse_schema_with_limits(&rendered, limits) {
            Ok(s) => s,
            Err(e) => {
                return Err(OracleFailure::RoundTrip(format!(
                    "rendered schema fails to re-parse: {e}"
                )))
            }
        };
        if reparsed != schema {
            return Err(OracleFailure::RoundTrip(
                "re-parsed schema differs from the original".to_owned(),
            ));
        }
        let mut outcome = CaseOutcome {
            parsed: true,
            round_tripped: true,
            matched: false,
        };

        let tree = match SchemaTree::compile_with_limits(&schema, limits) {
            Ok(t) => t,
            Err(_) => return Ok(outcome), // typed compile errors are clean
        };
        if tree.len() <= MATCH_ORACLE_MAX_NODES {
            let prepared = session.prepare(&tree);
            let par = session.hybrid(&prepared, &prepared);
            let seq = session.hybrid_sequential(&prepared, &prepared);
            if par.matrix != seq.matrix {
                return Err(OracleFailure::ParSeqDivergence(
                    "similarity matrices differ".to_owned(),
                ));
            }
            if par.total_qom.to_bits() != seq.total_qom.to_bits() {
                return Err(OracleFailure::ParSeqDivergence(format!(
                    "total QoM differs: parallel {} vs sequential {}",
                    par.total_qom, seq.total_qom
                )));
            }
            outcome.matched = true;
        }
        Ok(outcome)
    }));
    match rest {
        Err(payload) => Err(OracleFailure::Panic(panic_message(payload))),
        Ok(result) => result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmatch_core::MatchConfig;

    fn session() -> MatchSession {
        MatchSession::new(MatchConfig::default())
    }

    #[test]
    fn valid_schema_passes_all_oracles() {
        let src = r#"<xs:schema xmlns:xs="x">
          <xs:element name="PO"><xs:complexType><xs:sequence>
            <xs:element name="OrderNo" type="xs:integer"/>
            <xs:element name="ShipTo" type="xs:string"/>
          </xs:sequence></xs:complexType></xs:element>
        </xs:schema>"#;
        let outcome = check_case(src, &session(), &IngestLimits::default()).unwrap();
        assert!(outcome.parsed && outcome.round_tripped && outcome.matched);
    }

    #[test]
    fn clean_parse_errors_are_not_failures() {
        let outcome = check_case("<not-a-schema/>", &session(), &IngestLimits::default()).unwrap();
        assert!(!outcome.parsed);
        let outcome = check_case("<<<", &session(), &IngestLimits::default()).unwrap();
        assert!(!outcome.parsed);
    }

    #[test]
    fn failure_tags_are_stable() {
        assert_eq!(OracleFailure::Panic("p".into()).tag(), "panic");
        assert_eq!(OracleFailure::RoundTrip("r".into()).tag(), "roundtrip");
        assert_eq!(OracleFailure::ParSeqDivergence("d".into()).tag(), "parseq");
        assert!(OracleFailure::Panic("p".into()).is_crash());
        assert!(!OracleFailure::RoundTrip("r".into()).is_crash());
    }
}
