//! CLI for the deterministic fuzzing harness.
//!
//! The summary line (stdout) is a pure function of `--seed` and `--cases`;
//! timing goes to stderr so two runs with the same arguments are
//! byte-identical on stdout. Exit status: 0 clean, 1 on crashers or oracle
//! violations, 2 on argument errors.

use qmatch_fuzz::{run, FuzzConfig};
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "\
usage: qmatch-fuzz [--seed N] [--cases N] [--budget-ms N] [--repro-dir PATH]

Deterministic structure-aware fuzzer for the QMatch ingestion pipeline.

options:
  --seed N        master seed (default 0); every case derives from it
  --cases N       number of cases to run (default 1000)
  --budget-ms N   optional wall-clock budget; stops early when exceeded
                  (makes the summary timing-dependent)
  --repro-dir P   directory for minimized repro files (default fuzz-repro)
";

fn parse_args(args: &[String]) -> Result<FuzzConfig, String> {
    let mut config = FuzzConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--seed" => {
                config.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed must be an unsigned integer".to_owned())?;
            }
            "--cases" => {
                config.cases = value("--cases")?
                    .parse()
                    .map_err(|_| "--cases must be an unsigned integer".to_owned())?;
            }
            "--budget-ms" => {
                config.budget_ms = Some(
                    value("--budget-ms")?
                        .parse()
                        .map_err(|_| "--budget-ms must be an unsigned integer".to_owned())?,
                );
            }
            "--repro-dir" => {
                config.repro_dir = value("--repro-dir")?.into();
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(message) => {
            if message.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {message}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let started = Instant::now();
    let summary = run(&config);
    println!("{}", summary.line());
    eprintln!(
        "qmatch-fuzz: finished in {:.1}s",
        started.elapsed().as_secs_f64()
    );
    for failure in &summary.failures {
        eprintln!(
            "qmatch-fuzz: case {} failed oracle {}: {:?}{}",
            failure.case,
            failure.failure.tag(),
            failure.failure,
            failure
                .repro_path
                .as_deref()
                .map(|p| format!(" (repro: {})", p.display()))
                .unwrap_or_default(),
        );
    }
    if summary.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
