//! Byte- and structure-level mutators.
//!
//! Byte mutations model corrupted or truncated input; structured mutations
//! model well-formed XML that is *wrong at the schema level* (duplicate
//! attributes, bad occurrence constraints, dangling type references,
//! self-referential groups). Both must drive the pipeline into clean typed
//! errors, never panics.

use crate::gen::GeneratedSchema;
use qmatch_prng::SmallRng;

/// Applies one random byte-level mutation and returns the mutated text
/// (lossily re-decoded, since mutations can break UTF-8).
pub fn mutate_bytes(rng: &mut SmallRng, input: &str) -> String {
    let mut bytes = input.as_bytes().to_vec();
    if bytes.is_empty() {
        return String::new();
    }
    match rng.gen_range(0..5u32) {
        // Truncate at an arbitrary byte.
        0 => {
            let cut = rng.gen_range(0..bytes.len());
            bytes.truncate(cut);
        }
        // Flip one bit.
        1 => {
            let at = rng.gen_range(0..bytes.len());
            bytes[at] ^= 1 << rng.gen_range(0..8u32);
        }
        // Insert a byte drawn from XML-significant characters.
        2 => {
            const SIGNIFICANT: &[u8] = b"<>&\"'=/!?-[]; x\0";
            let at = rng.gen_range(0..=bytes.len());
            bytes.insert(at, SIGNIFICANT[rng.gen_range(0..SIGNIFICANT.len())]);
        }
        // Delete a short span.
        3 => {
            let at = rng.gen_range(0..bytes.len());
            let len = rng.gen_range(1..=16usize).min(bytes.len() - at);
            bytes.drain(at..at + len);
        }
        // Duplicate-splice: copy a span to another position.
        _ => {
            let at = rng.gen_range(0..bytes.len());
            let len = rng.gen_range(1..=32usize).min(bytes.len() - at);
            let span: Vec<u8> = bytes[at..at + len].to_vec();
            let dest = rng.gen_range(0..=bytes.len());
            bytes.splice(dest..dest, span);
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Applies one structured (schema-aware) mutation to a valid generated
/// schema. The result is usually well-formed XML that must fail cleanly in
/// the XSD layer rather than the XML layer.
pub fn mutate_structure(rng: &mut SmallRng, generated: &GeneratedSchema) -> String {
    let text = &generated.text;
    match rng.gen_range(0..6u32) {
        // Duplicate attribute on the first element tag.
        0 => text.replacen("<xs:element name=", "<xs:element name=\"dup\" name=", 1),
        // Non-numeric occurrence constraint.
        1 => text.replacen("<xs:element name=", "<xs:element minOccurs=\"banana\" name=", 1),
        // Unknown schema construct at top level.
        2 => text.replacen("</xs:schema>", "  <xs:frobnicate/>\n</xs:schema>", 1),
        // Dangling type reference.
        3 => {
            if let Some(at) = text.find("type=\"") {
                let end = text[at + 6..].find('"').map(|e| at + 6 + e);
                match end {
                    Some(end) => format!("{}NoSuchType999{}", &text[..at + 6], &text[end..]),
                    None => text.clone(),
                }
            } else {
                text.replacen("</xs:schema>", "  <xs:element name=\"ghost\" type=\"NoSuchType999\"/>\n</xs:schema>", 1)
            }
        }
        // Self-referential model group, referenced so compilation sees it.
        4 => text.replacen(
            "</xs:schema>",
            concat!(
                "  <xs:group name=\"LoopG\"><xs:sequence><xs:group ref=\"LoopG\"/></xs:sequence></xs:group>\n",
                "  <xs:element name=\"loopRoot\"><xs:complexType><xs:sequence>",
                "<xs:group ref=\"LoopG\"/>",
                "</xs:sequence></xs:complexType></xs:element>\n</xs:schema>"
            ),
            1,
        ),
        // Stray close tag.
        _ => text.replacen("</xs:schema>", "</xs:oops></xs:schema>", 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_schema;
    use qmatch_xsd::parse_schema;

    #[test]
    fn byte_mutations_are_deterministic() {
        let generated = gen_schema(&mut SmallRng::seed_from_u64(9)).text;
        let a = mutate_bytes(&mut SmallRng::seed_from_u64(3), &generated);
        let b = mutate_bytes(&mut SmallRng::seed_from_u64(3), &generated);
        assert_eq!(a, b);
    }

    #[test]
    fn structured_mutations_error_cleanly() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..100 {
            let generated = gen_schema(&mut rng);
            let mutated = mutate_structure(&mut rng, &generated);
            // Must not panic; Ok is allowed (some splices are harmless on
            // some documents), but most of these produce typed errors.
            let _ = parse_schema(&mutated);
        }
    }

    #[test]
    fn empty_input_survives_byte_mutation() {
        assert_eq!(mutate_bytes(&mut SmallRng::seed_from_u64(1), ""), "");
    }
}
