//! Structure-aware XSD generation.
//!
//! Produces schema documents that exercise the whole object model — named
//! simple and complex types, global element declarations and `ref=` uses,
//! all three compositors, attributes with `use=` semantics, and occurrence
//! constraints — while staying *valid*, so the round-trip and match oracles
//! have real work to do. Invalid inputs come from [`crate::mutate`], not
//! from here.

use qmatch_prng::SmallRng;
use std::fmt::Write as _;

const BUILTINS: &[&str] = &[
    "xs:string",
    "xs:integer",
    "xs:date",
    "xs:decimal",
    "xs:boolean",
    "xs:int",
    "xs:positiveInteger",
    "xs:anyURI",
];

/// Label vocabulary skewed toward schema-matching corpora so the linguistic
/// matcher sees realistic tokens, with a deterministic unique suffix to keep
/// the global symbol spaces collision-free.
const WORDS: &[&str] = &[
    "PO", "Order", "Line", "Item", "Qty", "Quantity", "Ship", "Bill", "To", "City", "Street",
    "Zip", "Code", "Name", "Addr", "Address", "Date", "Count", "Total", "Price", "Unit", "Id",
    "Ref", "Type", "Status", "Customer", "Contact", "Phone",
];

/// Deterministic name generator with a per-document counter suffix, so two
/// draws can never collide in a symbol space.
pub struct NamePool {
    counter: u32,
}

impl NamePool {
    /// A fresh pool (counter at zero).
    pub fn new() -> NamePool {
        NamePool { counter: 0 }
    }

    /// Draws a fresh unique name like `OrderQty3`.
    pub fn fresh(&mut self, rng: &mut SmallRng) -> String {
        let a = WORDS[rng.gen_range(0..WORDS.len())];
        let b = WORDS[rng.gen_range(0..WORDS.len())];
        let n = self.counter;
        self.counter += 1;
        format!("{a}{b}{n}")
    }
}

impl Default for NamePool {
    fn default() -> Self {
        NamePool::new()
    }
}

fn builtin(rng: &mut SmallRng) -> &'static str {
    BUILTINS[rng.gen_range(0..BUILTINS.len())]
}

fn occurs_attrs(rng: &mut SmallRng) -> String {
    let mut s = String::new();
    if rng.gen_bool(0.3) {
        s.push_str(" minOccurs=\"0\"");
    }
    if rng.gen_bool(0.2) {
        let max = ["2", "5", "unbounded"][rng.gen_range(0..3usize)];
        let _ = write!(s, " maxOccurs=\"{max}\"");
    }
    s
}

/// Everything the generator decided about one document, so callers can
/// reference the declared names (e.g. when splicing mutations).
pub struct GeneratedSchema {
    /// The rendered schema document.
    pub text: String,
    /// Names of the named types declared at top level.
    pub type_names: Vec<String>,
    /// Names of the global element declarations (the first is the root the
    /// tree compiler picks).
    pub element_names: Vec<String>,
}

/// Generates one valid schema document.
pub fn gen_schema(rng: &mut SmallRng) -> GeneratedSchema {
    let mut pool = NamePool::new();
    let mut type_names = Vec::new();
    let mut element_names = Vec::new();
    let mut body = String::new();

    // Named simple types: restrictions over a built-in, sometimes faceted.
    let n_simple = rng.gen_range(0..=2usize);
    for _ in 0..n_simple {
        let name = pool.fresh(rng);
        let base = builtin(rng);
        let facet = if rng.gen_bool(0.5) {
            format!("<xs:maxInclusive value=\"{}\"/>", rng.gen_range(1..1000u32))
        } else {
            String::new()
        };
        let _ = writeln!(
            body,
            "  <xs:simpleType name=\"{name}\"><xs:restriction base=\"{base}\">{facet}</xs:restriction></xs:simpleType>"
        );
        type_names.push(name);
    }

    // Named complex types: a compositor of leaves, maybe an attribute.
    let n_complex = rng.gen_range(0..=2usize);
    for _ in 0..n_complex {
        let name = pool.fresh(rng);
        let compositor = ["sequence", "choice", "all"][rng.gen_range(0..3usize)];
        let _ = writeln!(body, "  <xs:complexType name=\"{name}\">");
        let _ = writeln!(body, "    <xs:{compositor}>");
        for _ in 0..rng.gen_range(1..=3usize) {
            let leaf = pool.fresh(rng);
            let ty = pick_simple_type(rng, &type_names);
            // xs:all members must keep maxOccurs <= 1.
            let occurs = if compositor == "all" {
                String::new()
            } else {
                occurs_attrs(rng)
            };
            let _ = writeln!(
                body,
                "      <xs:element name=\"{leaf}\" type=\"{ty}\"{occurs}/>"
            );
        }
        let _ = writeln!(body, "    </xs:{compositor}>");
        if rng.gen_bool(0.5) {
            let attr = pool.fresh(rng);
            let use_kw = ["optional", "required"][rng.gen_range(0..2usize)];
            let _ = writeln!(
                body,
                "    <xs:attribute name=\"{attr}\" type=\"{}\" use=\"{use_kw}\"/>",
                builtin(rng)
            );
        }
        let _ = writeln!(body, "  </xs:complexType>");
        type_names.push(name);
    }

    // Optional global leaf elements available for ref= use.
    let n_ref_targets = rng.gen_range(0..=2usize);
    let mut ref_targets = Vec::new();
    for _ in 0..n_ref_targets {
        let name = pool.fresh(rng);
        let _ = writeln!(
            body,
            "  <xs:element name=\"{name}\" type=\"{}\"/>",
            pick_simple_type(rng, &type_names)
        );
        ref_targets.push(name);
    }

    // The root element: an inline complex type with nested structure.
    let root = pool.fresh(rng);
    let _ = writeln!(body, "  <xs:element name=\"{root}\">");
    render_inline_complex(rng, &mut pool, &mut body, 2, 3, &type_names, &ref_targets);
    let _ = writeln!(body, "  </xs:element>");

    // Global elements are ordered root-first so SchemaTree::compile picks
    // the interesting one; ref targets follow.
    let mut text = String::from(
        "<?xml version=\"1.0\"?>\n<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">\n",
    );
    // Move the root declaration before the ref targets by rendering order:
    // body already interleaves them, which is fine — compile() takes the
    // first *global element*, and ref targets are plain leaves, so either
    // root works for the oracles. Keep document order as generated.
    text.push_str(&body);
    text.push_str("</xs:schema>\n");

    element_names.push(root);
    element_names.extend(ref_targets);
    GeneratedSchema {
        text,
        type_names,
        element_names,
    }
}

fn pick_simple_type(rng: &mut SmallRng, named: &[String]) -> String {
    if !named.is_empty() && rng.gen_bool(0.3) {
        named[rng.gen_range(0..named.len())].clone()
    } else {
        builtin(rng).to_owned()
    }
}

/// Renders `<xs:complexType>...` (indented) for an element open tag already
/// written by the caller.
fn render_inline_complex(
    rng: &mut SmallRng,
    pool: &mut NamePool,
    out: &mut String,
    indent: usize,
    depth: u32,
    type_names: &[String],
    ref_targets: &[String],
) {
    let pad = "  ".repeat(indent);
    let compositor = if rng.gen_bool(0.7) {
        "sequence"
    } else {
        "choice"
    };
    let _ = writeln!(out, "{pad}<xs:complexType>");
    let _ = writeln!(out, "{pad}  <xs:{compositor}>");
    for _ in 0..rng.gen_range(1..=4usize) {
        if !ref_targets.is_empty() && rng.gen_bool(0.2) {
            let target = &ref_targets[rng.gen_range(0..ref_targets.len())];
            let _ = writeln!(
                out,
                "{pad}    <xs:element ref=\"{target}\"{}/>",
                occurs_attrs(rng)
            );
        } else if depth > 0 && rng.gen_bool(0.35) {
            let name = pool.fresh(rng);
            let _ = writeln!(out, "{pad}    <xs:element name=\"{name}\">");
            render_inline_complex(
                rng,
                pool,
                out,
                indent + 3,
                depth - 1,
                type_names,
                ref_targets,
            );
            let _ = writeln!(out, "{pad}    </xs:element>");
        } else {
            let name = pool.fresh(rng);
            let _ = writeln!(
                out,
                "{pad}    <xs:element name=\"{name}\" type=\"{}\"{}/>",
                pick_simple_type(rng, type_names),
                occurs_attrs(rng)
            );
        }
    }
    let _ = writeln!(out, "{pad}  </xs:{compositor}>");
    if rng.gen_bool(0.4) {
        let attr = pool.fresh(rng);
        let use_kw = ["optional", "required"][rng.gen_range(0..2usize)];
        let _ = writeln!(
            out,
            "{pad}  <xs:attribute name=\"{attr}\" type=\"{}\" use=\"{use_kw}\"/>",
            builtin(rng)
        );
    }
    let _ = writeln!(out, "{pad}</xs:complexType>");
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmatch_xsd::{parse_schema, SchemaTree};

    #[test]
    fn generated_schemas_are_valid() {
        let mut rng = SmallRng::seed_from_u64(7);
        for case in 0..200 {
            let generated = gen_schema(&mut rng);
            let schema = parse_schema(&generated.text)
                .unwrap_or_else(|e| panic!("case {case}: {e}\n{}", generated.text));
            SchemaTree::compile(&schema)
                .unwrap_or_else(|e| panic!("case {case}: {e}\n{}", generated.text));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen_schema(&mut SmallRng::seed_from_u64(42)).text;
        let b = gen_schema(&mut SmallRng::seed_from_u64(42)).text;
        assert_eq!(a, b);
        let c = gen_schema(&mut SmallRng::seed_from_u64(43)).text;
        assert_ne!(a, c);
    }

    #[test]
    fn name_pool_never_collides() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut pool = NamePool::new();
        let names: Vec<String> = (0..100).map(|_| pool.fresh(&mut rng)).collect();
        let mut unique = names.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }
}
