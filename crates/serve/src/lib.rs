#![warn(missing_docs)]

//! `qmatch-serve`: a long-running match server with a persistent schema
//! registry.
//!
//! The library half of `qmatch serve`. A [`server::Server`] fronts a
//! [`registry::Registry`] — named schemas ingested over HTTP, compiled
//! once, prepared into the session's reusable artifacts, and matched many
//! times — so the prepare-once/match-many economics of
//! [`qmatch_core::MatchSession`] survive across *processes*, not just
//! within one CLI invocation.
//!
//! Everything is built on `std` only (the deployment target has no crate
//! registry access): [`http`] is a hand-rolled HTTP/1.1 connection layer,
//! [`json`] a writer/escaper, [`metrics`] lock-free counters with a
//! Prometheus-flavoured exposition, and [`server`] a fixed worker pool over
//! `std::net::TcpListener` with cooperative (signal- or handle-triggered)
//! graceful shutdown.
//!
//! # Endpoints
//!
//! The canonical surface is versioned under `/v1/`; the original
//! unversioned paths keep working as aliases but answer with
//! `Deprecation: true` and a `Link: </v1/...>; rel="successor-version"`
//! header.
//!
//! | Route | Meaning |
//! |---|---|
//! | `PUT /v1/schemas/{name}` | ingest an XSD body under `name` (limits enforced) |
//! | `GET /v1/schemas` | list registered schemas and label-cache stats |
//! | `POST /v1/match?source=A&target=B` | match two registered schemas (`algo=`, `explain=1`, `threshold=`) |
//! | `POST /v1/match/topk?source=A&k=N` | rank `A` against the whole registry by root QoM |
//! | `GET /v1/metrics` | plain-text counters, including per-phase pipeline histograms |
//! | `GET /v1/healthz` | liveness |
//!
//! Every response carries an `X-Request-Id` header — the client's own, or
//! a server-minted `q-N` — and a [`metrics::PhaseSink`] installed on the
//! shared session feeds per-phase span data (prepares, label-matrix
//! builds, wavefront passes) into `GET /metrics`.
//!
//! Match responses are deterministic functions of the registry and the
//! query (no counters inside), and every number is rendered with
//! [`json::fmt_f64`] — so they are bit-identical to library results and
//! across concurrent clients.

pub mod handlers;
pub mod http;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod server;

pub use json::fmt_f64;
pub use metrics::{Endpoint, Metrics};
pub use registry::{Registered, Registry, SchemaInfo};
pub use server::{install_signal_handlers, signal_received, Server, ServerConfig, ShutdownHandle};
