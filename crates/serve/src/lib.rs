#![warn(missing_docs)]

//! `qmatch-serve`: a long-running match server with a durable schema
//! registry.
//!
//! The library half of `qmatch serve`. A [`server::Server`] fronts a
//! sharded [`registry::Registry`] — named schemas ingested over HTTP,
//! compiled once, prepared into per-shard session artifacts, and matched
//! many times — so the prepare-once/match-many economics of
//! [`qmatch_core::MatchSession`] survive across *processes*, not just
//! within one CLI invocation. With a data directory configured, they also
//! survive across *restarts*: every `PUT` is appended to a write-ahead
//! log ([`persist`]) that compacts into snapshots and replays on boot.
//!
//! Everything is built on `std` only (the deployment target has no crate
//! registry access): [`http`] is a hand-rolled HTTP/1.1 parser/serializer,
//! [`reactor`] an epoll readiness loop over raw `libc` FFI (nonblocking
//! accept, per-connection parse state machines, slow-loris deadlines,
//! bounded match-queue backpressure), [`shard`] the shared-nothing
//! registry partitions and their worker loops, [`json`] a writer/escaper,
//! and [`metrics`] lock-free counters with a Prometheus-flavoured
//! exposition.
//!
//! # Topology
//!
//! One reactor thread owns every socket. Parsed requests dispatch by
//! [`handlers::disposition`]: cheap endpoints run inline; `PUT` and
//! `/match` queue to the owner shard (`fnv1a(name) % shards`); topk
//! scatters to every shard and the last to finish merges the partial
//! rankings through a total-order heap. The queue is bounded
//! (`queue_depth`): saturated servers answer `429` with `Retry-After`,
//! and jobs that outlive their deadline budget answer `503`.
//!
//! # Endpoints
//!
//! The canonical surface is versioned under `/v1/`; the original
//! unversioned paths keep working as aliases but answer with
//! `Deprecation: true` and a `Link: </v1/...>; rel="successor-version"`
//! header.
//!
//! | Route | Meaning |
//! |---|---|
//! | `PUT /v1/schemas/{name}` | ingest an XSD body under `name` (limits enforced, WAL-logged) |
//! | `GET /v1/schemas` | list registered schemas and label-cache stats |
//! | `POST /v1/match?source=A&target=B` | match two registered schemas (`algo=`, `explain=1`, `threshold=`, `precision=`) |
//! | `POST /v1/match/topk?source=A&k=N` | rank `A` against the whole registry by root QoM (scatter-gather) |
//! | `GET /v1/metrics` | plain-text counters, including queue-wait and scatter histograms |
//! | `GET /v1/healthz` | liveness |
//!
//! Every response carries an `X-Request-Id` header — the client's own, or
//! a server-minted `q-N` — threaded through the queue/shard/request trace
//! spans, and a [`metrics::PhaseSink`] installed on every shard session
//! feeds per-phase span data (prepares, label-matrix builds, wavefront
//! passes) into `GET /metrics`.
//!
//! Match responses are deterministic functions of the registry and the
//! query (no counters inside), and every number is rendered with
//! [`json::fmt_f64`] — so they are bit-identical to library results,
//! across concurrent clients, across shard counts, and across restarts.

pub mod handlers;
pub mod http;
pub mod json;
pub mod metrics;
pub mod persist;
pub mod reactor;
pub mod registry;
pub mod server;
pub mod shard;

pub use handlers::ServeState;
pub use json::fmt_f64;
pub use metrics::{Endpoint, Metrics};
pub use persist::Persist;
pub use registry::{Registered, Registry, SchemaInfo};
pub use server::{install_signal_handlers, signal_received, Server, ServerConfig, ShutdownHandle};
pub use shard::Shard;
