//! Request routing and endpoint logic.
//!
//! Every handler is a pure function of the request and the shared
//! [`ServeState`] (sharded registry + metrics + limits + optional
//! durability engine), returning the [`Endpoint`] label for metrics and a
//! [`Response`]. Match responses are deterministic functions of the
//! registry contents and the query — they carry no counters — so
//! concurrent clients asking the same question get byte-identical bodies
//! (asserted in `tests/serve_http.rs`).
//!
//! [`handle`] is the synchronous dispatcher: unit tests call it directly,
//! shard workers call it for queued single-shard jobs, and the reactor
//! calls it inline for cheap endpoints. The reactor decides *where* a
//! request runs via [`disposition`]; `/match/topk` is split into
//! [`validate_topk`] (reactor thread) → [`topk_partial`] (every shard) →
//! [`topk_render`] (the last shard to finish), and the sequential
//! composition of those three pieces inside [`handle`] is byte-identical
//! to the scattered execution.

use crate::http::{Request, Response};
use crate::json::Json;
use crate::metrics::{Endpoint, Metrics};
use crate::persist::Persist;
use crate::registry::Registry;
use qmatch_core::index::{IndexParams, IndexPolicy, Signature};
use qmatch_core::mapping::{extract_mapping, path_of};
use qmatch_core::session::MatchSession;
use qmatch_core::{
    mapping_generation_leaves, quality, Aggregation, Algorithm, Component, MatchOutcome,
    OwnedPreparedSchema, Precision,
};
use qmatch_xsd::{parse_schema_with_limits, IngestLimits, SchemaTree, XsdError};
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Longest accepted schema name.
const MAX_NAME_LEN: usize = 128;

/// Everything a request handler can touch, shared by the reactor and all
/// shard workers.
pub struct ServeState {
    /// The sharded schema registry.
    pub registry: Registry,
    /// Request/latency/queue counters.
    pub metrics: Arc<Metrics>,
    /// Ingestion limits applied to `PUT /schemas/{name}` bodies.
    pub limits: IngestLimits,
    /// Registry durability (WAL + snapshots); `None` runs in-memory only.
    pub persist: Option<Persist>,
}

/// Where the reactor should run a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Cheap enough for the reactor thread (health, metrics, listings,
    /// and every parse-level error).
    Inline,
    /// Queue to one shard's worker (PUT, `/match` — keyed by owner).
    Shard {
        /// The owning shard's index.
        shard: usize,
        /// Endpoint label, pre-computed for backpressure/deadline errors.
        endpoint: Endpoint,
    },
    /// Fan out to every shard (`/match/topk`).
    Scatter,
}

/// Strips the optional `/v1` prefix; returns the effective path and
/// whether the request used the versioned surface.
fn strip_v1(path: &str) -> (&str, bool) {
    match path.strip_prefix("/v1") {
        Some(rest) if rest.starts_with('/') => (rest, true),
        _ => (path, false),
    }
}

/// Decides where a parsed request should execute. Requests that will fail
/// validation stay [`Disposition::Inline`] where possible, but shard-side
/// validation failures (e.g. an unknown source schema) are fine — the
/// worker produces the same error response the inline path would.
pub fn disposition(req: &Request, registry: &Registry) -> Disposition {
    let (path, _) = strip_v1(&req.path);
    match (req.method.as_str(), path) {
        ("PUT", p) if p.strip_prefix("/schemas/").is_some_and(|n| !n.is_empty()) => {
            let name = p.strip_prefix("/schemas/").expect("guard");
            Disposition::Shard {
                shard: registry.shard_of(name),
                endpoint: Endpoint::SchemasPut,
            }
        }
        ("DELETE", p) if p.strip_prefix("/schemas/").is_some_and(|n| !n.is_empty()) => {
            // Routed to the owner shard like PUT, so all mutations of one
            // name serialize on one worker thread.
            let name = p.strip_prefix("/schemas/").expect("guard");
            Disposition::Shard {
                shard: registry.shard_of(name),
                endpoint: Endpoint::SchemasDelete,
            }
        }
        ("POST", "/match") => match req.query_param("source") {
            Some(source) => Disposition::Shard {
                shard: registry.shard_of(source),
                endpoint: Endpoint::Match,
            },
            None => Disposition::Inline, // will 400 without touching a shard
        },
        ("POST", "/match/topk") => Disposition::Scatter,
        _ => Disposition::Inline,
    }
}

/// Adds the deprecation headers to responses served via unversioned alias
/// paths. The canonical API surface lives under `/v1/...`; the original
/// paths keep working but carry `Deprecation: true` and a
/// `Link: </v1/...>; rel="successor-version"` header.
pub fn finalize(path: &str, endpoint: Endpoint, response: Response) -> Response {
    let (_, versioned) = strip_v1(path);
    if versioned || endpoint == Endpoint::Other {
        response
    } else {
        response
            .with_header("deprecation", "true")
            .with_header("link", format!("</v1{path}>; rel=\"successor-version\""))
    }
}

/// Routes one request to its handler and applies the deprecation-header
/// policy. This is the full synchronous path — on the server, single-shard
/// jobs run it on their owner shard's worker thread.
pub fn handle(req: &Request, state: &ServeState) -> (Endpoint, Response) {
    let (path, _) = strip_v1(&req.path);
    let (endpoint, response) = route(req, path, state);
    (endpoint, finalize(&req.path, endpoint, response))
}

/// Dispatches on the (already version-stripped) path.
fn route(req: &Request, path: &str, state: &ServeState) -> (Endpoint, Response) {
    let registry = &state.registry;
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => (
            Endpoint::Healthz,
            Response::json(200, Json::obj().field("status", Json::str("ok")).render()),
        ),
        ("GET", "/metrics") => {
            let mut text = state.metrics.render(&registry.snapshot());
            // The live fraction lives on the durability engine, not the
            // counter block: without --data-dir (or right after a
            // compaction) the WAL is empty, which counts as all-live.
            let live = state
                .persist
                .as_ref()
                .map_or(1.0, |p| p.wal_live_fraction());
            text.push_str(&format!(
                "qmatch_wal_live_fraction {}\n",
                crate::json::fmt_f64(live)
            ));
            (Endpoint::Metrics, Response::text(200, text))
        }
        ("GET", "/schemas") => (Endpoint::SchemasList, list_schemas(registry)),
        ("PUT", path)
            if path
                .strip_prefix("/schemas/")
                .is_some_and(|n| !n.is_empty()) =>
        {
            let name = path.strip_prefix("/schemas/").expect("guard");
            (Endpoint::SchemasPut, put_schema(name, &req.body, state))
        }
        ("DELETE", path)
            if path
                .strip_prefix("/schemas/")
                .is_some_and(|n| !n.is_empty()) =>
        {
            let name = path.strip_prefix("/schemas/").expect("guard");
            (Endpoint::SchemasDelete, delete_schema(name, state))
        }
        ("POST", "/match") => (Endpoint::Match, do_match(req, registry)),
        ("POST", "/match/topk") => (Endpoint::MatchTopk, do_topk(req, state)),
        (_, "/healthz" | "/metrics" | "/schemas" | "/match" | "/match/topk") => (
            Endpoint::Other,
            error(405, "method_not_allowed", "method not allowed on this path"),
        ),
        (method, path)
            if path.starts_with("/schemas/") && method != "PUT" && method != "DELETE" =>
        {
            (
                Endpoint::Other,
                error(
                    405,
                    "method_not_allowed",
                    "schemas are registered with PUT and removed with DELETE",
                ),
            )
        }
        _ => (Endpoint::Other, error(404, "not_found", "no such endpoint")),
    }
}

/// Builds the uniform error body `{"error":{"kind":...,"message":...}}`.
pub fn error(status: u16, kind: &str, message: impl Into<String>) -> Response {
    Response::json(
        status,
        Json::obj()
            .field(
                "error",
                Json::obj()
                    .field("kind", Json::str(kind))
                    .field("message", Json::str(message.into())),
            )
            .render(),
    )
}

fn list_schemas(registry: &Registry) -> Response {
    let infos = registry.list();
    let stats = registry.cache_stats();
    let schemas = infos
        .into_iter()
        .map(|info| {
            Json::obj()
                .field("name", Json::str(info.name))
                .field("nodes", Json::UInt(info.nodes as u64))
                .field("max_depth", Json::UInt(info.max_depth as u64))
                .field("source_bytes", Json::UInt(info.source_bytes))
                .field("resident", Json::Bool(info.resident))
        })
        .collect();
    Response::json(
        200,
        Json::obj()
            .field(
                "docs",
                Json::str(
                    "API v1: use /v1/schemas, /v1/match, /v1/match/topk, /v1/metrics, \
                     /v1/healthz; unversioned paths are deprecated aliases",
                ),
            )
            .field("count", Json::UInt(registry.len() as u64))
            .field("schemas", Json::Arr(schemas))
            .field(
                "label_cache",
                Json::obj()
                    .field("hits", Json::UInt(stats.hits))
                    .field("misses", Json::UInt(stats.misses))
                    .field("hit_rate", Json::Num(stats.hit_rate())),
            )
            .render(),
    )
}

fn put_schema(name: &str, body: &[u8], state: &ServeState) -> Response {
    if name.len() > MAX_NAME_LEN
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
    {
        return error(
            400,
            "invalid_name",
            "schema names are 1-128 characters of [A-Za-z0-9._-]",
        );
    }
    if body.is_empty() {
        return error(
            400,
            "empty_body",
            "PUT a schema document as the request body",
        );
    }
    let Ok(text) = std::str::from_utf8(body) else {
        return error(400, "invalid_schema", "schema body is not UTF-8");
    };
    let tree = parse_schema_with_limits(text, &state.limits)
        .and_then(|schema| SchemaTree::compile_with_limits(&schema, &state.limits));
    let tree = match tree {
        Ok(tree) => tree,
        Err(e @ XsdError::LimitExceeded { .. }) => {
            state.metrics.add_rejected_by_limits();
            return error(413, "limit_exceeded", e.to_string());
        }
        Err(e) => return error(400, "invalid_schema", e.to_string()),
    };
    state.metrics.add_ingested(body.len() as u64);
    // Register in memory FIRST, then log. The ordering is load-bearing for
    // durability: `Persist::compact` dumps the registry under the WAL
    // lock, so a record is only ever truncated away after the registry
    // state that covers it is snapshotted.
    let registered = state.registry.register(name, tree, body);
    if let Some(persist) = &state.persist {
        match persist.append(name, body) {
            Ok(bytes) => {
                state.metrics.add_wal_bytes(bytes);
                if persist.needs_compaction() {
                    // Best effort: a failed compaction leaves the (larger
                    // but complete) WAL in place.
                    let _ = persist.compact(|| state.registry.dump());
                }
            }
            Err(e) => {
                return error(
                    500,
                    "persist_failed",
                    format!("schema registered but not durably logged: {e}"),
                )
            }
        }
    }
    Response::json(
        if registered.replaced { 200 } else { 201 },
        Json::obj()
            .field("name", Json::str(name))
            .field("replaced", Json::Bool(registered.replaced))
            .field("nodes", Json::UInt(registered.nodes as u64))
            .field("max_depth", Json::UInt(registered.max_depth as u64))
            .render(),
    )
}

fn delete_schema(name: &str, state: &ServeState) -> Response {
    // Remove in memory FIRST, then log the tombstone — the same ordering
    // contract as put_schema: `Persist::compact` dumps the registry under
    // the WAL lock, so a truncated-away tombstone is always covered by a
    // snapshot that already excludes the schema.
    if !state.registry.remove(name) {
        return error(
            404,
            "unknown_schema",
            format!("no schema named {name:?} is registered"),
        );
    }
    if let Some(persist) = &state.persist {
        match persist.append_tombstone(name) {
            Ok(bytes) => {
                state.metrics.add_wal_bytes(bytes);
                if persist.needs_compaction() {
                    let _ = persist.compact(|| state.registry.dump());
                }
            }
            Err(e) => {
                return error(
                    500,
                    "persist_failed",
                    format!("schema removed but deletion not durably logged: {e}"),
                )
            }
        }
    }
    Response::json(
        200,
        Json::obj()
            .field("name", Json::str(name))
            .field("deleted", Json::Bool(true))
            .render(),
    )
}

/// Which algorithm a match request selects. Thresholds and mapping
/// extraction follow [`qmatch_core::quality`], so the serve surface and
/// the CLI agree byte-for-byte on every algorithm's defaults.
enum Algo {
    Hybrid,
    Linguistic,
    Structural,
    Cupid,
    TreeEdit,
    Composite {
        components: Vec<Component>,
        aggregation: Aggregation,
    },
}

impl Algo {
    /// The core algorithm this request variant selects.
    fn algorithm(&self) -> Algorithm {
        match self {
            Algo::Hybrid => Algorithm::Hybrid,
            Algo::Linguistic => Algorithm::Linguistic,
            Algo::Structural => Algorithm::Structural,
            Algo::Cupid => Algorithm::Cupid,
            Algo::TreeEdit => Algorithm::TreeEdit,
            Algo::Composite {
                components,
                aggregation,
            } => Algorithm::Composite {
                components: components.clone(),
                aggregation: aggregation.clone(),
            },
        }
    }
}

fn parse_algo(req: &Request) -> Result<Algo, Response> {
    match req.query_param("algo").unwrap_or("hybrid") {
        "hybrid" => Ok(Algo::Hybrid),
        "linguistic" => Ok(Algo::Linguistic),
        "structural" => Ok(Algo::Structural),
        "cupid" => Ok(Algo::Cupid),
        "tree-edit" => Ok(Algo::TreeEdit),
        "composite" => {
            let components = match req.query_param("components") {
                None => vec![Component::Linguistic, Component::Structural],
                Some(list) => list
                    .split(',')
                    .map(|c| match c.trim() {
                        "linguistic" => Ok(Component::Linguistic),
                        "structural" => Ok(Component::Structural),
                        "hybrid" => Ok(Component::Hybrid),
                        "tree-edit" => Ok(Component::TreeEdit),
                        other => Err(error(
                            400,
                            "unknown_component",
                            format!("unknown composite component {other:?}"),
                        )),
                    })
                    .collect::<Result<_, _>>()?,
            };
            let aggregation = match req.query_param("agg").unwrap_or("average") {
                "max" => Aggregation::Max,
                "min" => Aggregation::Min,
                "average" => Aggregation::Average,
                other => {
                    return Err(error(
                        400,
                        "unknown_aggregation",
                        format!("unknown aggregation {other:?} (use max|min|average)"),
                    ))
                }
            };
            Ok(Algo::Composite {
                components,
                aggregation,
            })
        }
        other => Err(error(
            400,
            "unknown_algo",
            format!(
                "unknown algorithm {other:?} \
                 (use hybrid|linguistic|structural|cupid|tree-edit|composite)"
            ),
        )),
    }
}

fn required_schema(
    req: &Request,
    registry: &Registry,
    param: &str,
) -> Result<(String, Arc<OwnedPreparedSchema>), Response> {
    let name = req
        .query_param(param)
        .ok_or_else(|| {
            error(
                400,
                "missing_parameter",
                format!("query parameter {param:?} is required"),
            )
        })?
        .to_owned();
    let prepared = registry.prepared(&name).ok_or_else(|| {
        error(
            404,
            "unknown_schema",
            format!("no schema named {name:?} is registered"),
        )
    })?;
    Ok((name, prepared))
}

fn run_algo(
    algo: &Algo,
    session: &MatchSession,
    source: &OwnedPreparedSchema,
    target: &OwnedPreparedSchema,
    precision: Precision,
) -> Result<(MatchOutcome, f64), Response> {
    let (source, target) = (source.prepared(), target.prepared());
    let algorithm = algo.algorithm();
    let default_threshold = quality::default_threshold(&algorithm, session.config());
    session
        .run_with_precision(&algorithm, source, target, precision)
        .map(|outcome| (outcome, default_threshold))
        .map_err(|e| error(400, "bad_composite", e.to_string()))
}

fn do_match(req: &Request, registry: &Registry) -> Response {
    let algo = match parse_algo(req) {
        Ok(algo) => algo,
        Err(response) => return response,
    };
    let explain = req.query_param("explain") == Some("1");
    // Reject the invalid combination up front, before the (potentially
    // expensive) match runs.
    if explain && !matches!(algo, Algo::Hybrid) {
        return error(
            400,
            "bad_request",
            "explain=1 requires the hybrid algorithm",
        );
    }
    let lookup = required_schema(req, registry, "source")
        .and_then(|s| required_schema(req, registry, "target").map(|t| (s, t)));
    let ((source_name, source), (target_name, target)) = match lookup {
        Ok(pair) => pair,
        Err(response) => return response,
    };
    // The owner shard's session: on the server this IS the current worker
    // thread's session, so its label cache and arena stay thread-hot.
    // Scores are pure functions of config + trees, so which session runs
    // the match never shows in the bytes.
    let session = registry.owner(&source_name).session();
    let threshold = match parse_threshold(req) {
        Ok(t) => t,
        Err(response) => return response,
    };
    let precision = match parse_precision(req) {
        Ok(p) => p.unwrap_or_else(|| session.config().precision),
        Err(response) => return response,
    };
    let (outcome, default_threshold) = match run_algo(&algo, session, &source, &target, precision) {
        Ok(pair) => pair,
        Err(response) => return response,
    };
    let threshold = threshold.unwrap_or(default_threshold);
    let (sp, tp) = (source.prepared(), target.prepared());
    // CUPID proposes leaf-anchored mappings; everything else uses greedy
    // 1:1 extraction over the whole matrix (same split as the CLI).
    let mapping = match algo {
        Algo::Cupid => mapping_generation_leaves(sp, tp, &outcome.matrix, threshold),
        _ => extract_mapping(&outcome.matrix, threshold),
    };
    let pairs = mapping
        .pairs
        .iter()
        .map(|c| {
            Json::obj()
                .field("source_path", Json::str(path_of(sp.tree(), c.source)))
                .field("target_path", Json::str(path_of(tp.tree(), c.target)))
                .field("score", Json::Num(c.score))
        })
        .collect();
    let mut body = Json::obj()
        .field("source", Json::str(source_name))
        .field("target", Json::str(target_name))
        .field(
            "algo",
            Json::str(req.query_param("algo").unwrap_or("hybrid")),
        )
        .field("threshold", Json::Num(threshold))
        .field("precision", Json::str(outcome.matrix.precision().name()))
        .field("total_qom", Json::Num(outcome.total_qom))
        .field("matches", Json::UInt(mapping.len() as u64))
        .field("mapping", Json::Arr(pairs));
    if matches!(algo, Algo::Hybrid) {
        let category = session.category(sp, tp, &outcome);
        body = body.field("category", Json::str(category.to_string()));
        if explain {
            let explanations = mapping
                .pairs
                .iter()
                .map(|c| {
                    Json::str(
                        session
                            .explain(sp, tp, c.source, c.target, &outcome.matrix)
                            .to_string(),
                    )
                })
                .collect();
            body = body.field("explanations", Json::Arr(explanations));
        }
    }
    Response::json(200, body.render())
}

fn parse_threshold(req: &Request) -> Result<Option<f64>, Response> {
    match req.query_param("threshold") {
        None => Ok(None),
        Some(raw) => match raw.parse::<f64>() {
            Ok(t) if (0.0..=1.0).contains(&t) => Ok(Some(t)),
            _ => Err(error(
                400,
                "bad_threshold",
                format!("threshold {raw:?} is not a number in [0, 1]"),
            )),
        },
    }
}

/// The `precision=` query parameter (`f64`/`f32` matrix storage; `None`
/// falls back to the session default).
fn parse_precision(req: &Request) -> Result<Option<Precision>, Response> {
    match req.query_param("precision") {
        None => Ok(None),
        Some(raw) => raw
            .parse::<Precision>()
            .map(Some)
            .map_err(|e| error(400, "bad_precision", e.to_string())),
    }
}

/// A validated `/match/topk` query, ready to scatter across shards.
pub struct TopkPlan {
    /// The original request path (for the deprecation-header policy).
    pub path: String,
    /// Source schema name (excluded from the ranking).
    pub source: String,
    /// The source's prepared artifact, fetched once from its owner.
    pub prepared: Arc<OwnedPreparedSchema>,
    /// How many ranked targets to return.
    pub k: usize,
    /// Ranking algorithm (`hybrid` or `cupid`): every candidate's root
    /// QoM comes from this engine.
    pub algo: Algorithm,
    /// Matrix storage precision for every comparison.
    pub precision: Precision,
    /// Candidate-index policy (`off | auto | force`), echoed in the body.
    pub policy: IndexPolicy,
    /// The source's candidate signature, computed once on the reactor so
    /// every shard filters against the same session-independent hashes.
    pub signature: Signature,
}

/// Validates a `/match/topk` request into a [`TopkPlan`]. Runs on the
/// reactor thread so invalid queries never occupy the match queue; the
/// `Err` response is NOT yet finalized (the caller applies [`finalize`]).
pub fn validate_topk(req: &Request, registry: &Registry) -> Result<TopkPlan, Response> {
    let (source, prepared) = required_schema(req, registry, "source")?;
    let raw_k = req.query_param("k").unwrap_or("5");
    let k = match raw_k.parse::<usize>() {
        Ok(k) if k > 0 => k,
        _ => {
            return Err(error(
                400,
                "bad_k",
                format!("k {raw_k:?} must be a positive integer"),
            ))
        }
    };
    let algo = match req.query_param("algo").unwrap_or("hybrid") {
        "hybrid" => Algorithm::Hybrid,
        "cupid" => Algorithm::Cupid,
        other => {
            return Err(error(
                400,
                "unknown_algo",
                format!("unknown topk algorithm {other:?} (use hybrid|cupid)"),
            ))
        }
    };
    let precision = match parse_precision(req) {
        Ok(p) => p.unwrap_or_else(|| registry.session().config().precision),
        Err(response) => return Err(response),
    };
    let policy = match req
        .query_param("index")
        .unwrap_or("auto")
        .parse::<IndexPolicy>()
    {
        Ok(policy) => policy,
        Err(message) => return Err(error(400, "bad_index", message)),
    };
    let signature = registry.session().signature(prepared.prepared());
    Ok(TopkPlan {
        path: req.path.clone(),
        source,
        prepared,
        k,
        algo,
        precision,
        policy,
        signature,
    })
}

/// One shard's share of a topk scatter: rank the schemas *this shard
/// owns* against the plan's source, keep its local top `k`. The global
/// top `k` is a subset of the union of per-shard top `k`s, so local
/// truncation loses nothing.
pub fn topk_partial(state: &ServeState, shard_index: usize, plan: &TopkPlan) -> Vec<(String, f64)> {
    let shard = state.registry.shard(shard_index);
    let session = shard.session();
    // The auto policy keys off the GLOBAL registry size, never the
    // shard-local one: every shard must make the same indexed/exhaustive
    // decision or the ranking would depend on how names hash to shards.
    let indexed = plan
        .policy
        .engages(state.registry.len(), &IndexParams::default());
    let names = if indexed {
        shard.candidates(&plan.signature)
    } else {
        shard.names()
    };
    let mut ranking: Vec<(String, f64)> = Vec::new();
    for name in names {
        if name == plan.source {
            continue;
        }
        // The shard only drops names under concurrent replacement, and
        // replacement never removes: the lookup cannot fail here, but stay
        // defensive and skip rather than 500.
        let Some(target) = shard.prepared(&name) else {
            continue;
        };
        // Only the root QoM survives the loop, so the matrix goes straight
        // back into the session arena for the next candidate to reuse.
        let outcome = session
            .run_with_precision(
                &plan.algo,
                plan.prepared.prepared(),
                target.prepared(),
                plan.precision,
            )
            .expect("hybrid and cupid are infallible");
        ranking.push((name, outcome.total_qom));
        session.recycle(outcome);
    }
    ranking.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ranking.truncate(plan.k);
    ranking
}

/// A ranking entry ordered for the gather heap: max-pop yields the
/// highest QoM, ties broken by lexicographically smallest name — exactly
/// the total order the sequential sort used, so merged output is
/// byte-identical.
struct Ranked(String, f64);

impl PartialEq for Ranked {
    fn eq(&self, other: &Ranked) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Ranked {}

impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Ranked) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ranked {
    fn cmp(&self, other: &Ranked) -> std::cmp::Ordering {
        self.1
            .total_cmp(&other.1)
            .then_with(|| other.0.cmp(&self.0))
    }
}

/// The gather half of topk: merge per-shard partials through a
/// total-order heap and render the response body. NOT yet finalized (the
/// caller applies [`finalize`]).
pub fn topk_render(plan: &TopkPlan, partials: Vec<(String, f64)>) -> Response {
    let mut heap: BinaryHeap<Ranked> = partials
        .into_iter()
        .map(|(name, qom)| Ranked(name, qom))
        .collect();
    let mut entries = Vec::with_capacity(plan.k.min(heap.len()));
    while entries.len() < plan.k {
        let Some(Ranked(name, qom)) = heap.pop() else {
            break;
        };
        entries.push(
            Json::obj()
                .field("target", Json::str(name))
                .field("total_qom", Json::Num(qom)),
        );
    }
    Response::json(
        200,
        Json::obj()
            .field("source", Json::str(plan.source.clone()))
            .field("k", Json::UInt(plan.k as u64))
            .field("algo", Json::str(plan.algo.name()))
            .field("precision", Json::str(plan.precision.name()))
            .field("index", Json::str(plan.policy.name()))
            .field("ranking", Json::Arr(entries))
            .render(),
    )
}

/// The sequential composition of validate → scatter → gather, used by the
/// synchronous [`handle`] path. Byte-identical to the fanned-out server
/// execution.
fn do_topk(req: &Request, state: &ServeState) -> Response {
    let plan = match validate_topk(req, &state.registry) {
        Ok(plan) => plan,
        Err(response) => return response,
    };
    let mut partials = Vec::new();
    for shard in 0..state.registry.shard_count() {
        partials.extend(topk_partial(state, shard, &plan));
    }
    topk_render(&plan, partials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::Shard;
    use qmatch_core::model::MatchConfig;
    use qmatch_core::MatchSession;

    const PO: &str = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="PO">
    <xs:complexType><xs:sequence>
      <xs:element name="OrderNo" type="xs:string"/>
      <xs:element name="Qty" type="xs:int"/>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>"#;

    fn state() -> ServeState {
        state_with(Registry::single(
            MatchSession::new(MatchConfig::default()),
            8,
        ))
    }

    fn state_with(registry: Registry) -> ServeState {
        ServeState {
            registry,
            metrics: Arc::new(Metrics::new()),
            limits: IngestLimits::default(),
            persist: None,
        }
    }

    fn get(path: &str) -> Request {
        request("GET", path, b"")
    }

    fn request(method: &str, target: &str, body: &[u8]) -> Request {
        let head = crate::http::parse_head(&format!("{method} {target} HTTP/1.1")).unwrap();
        Request {
            method: head.method,
            path: head.path,
            query: head.query,
            headers: head.headers,
            body: body.to_vec(),
            keep_alive: true,
        }
    }

    fn body_text(response: &Response) -> String {
        String::from_utf8(response.body.clone()).unwrap()
    }

    #[test]
    fn healthz_and_unknown_paths() {
        let state = state();
        let (endpoint, response) = handle(&get("/healthz"), &state);
        assert_eq!(endpoint, Endpoint::Healthz);
        assert_eq!(response.status, 200);
        assert_eq!(body_text(&response), r#"{"status":"ok"}"#);
        let (endpoint, response) = handle(&get("/nope"), &state);
        assert_eq!(endpoint, Endpoint::Other);
        assert_eq!(response.status, 404);
        assert!(body_text(&response).contains("not_found"));
        let (_, response) = handle(&request("POST", "/healthz", b""), &state);
        assert_eq!(response.status, 405);
        let (_, response) = handle(&request("GET", "/schemas/po", b""), &state);
        assert_eq!(response.status, 405, "schemas/{{name}} is PUT-only");
    }

    #[test]
    fn put_then_list_then_match() {
        let state = state();
        let (endpoint, response) = handle(&request("PUT", "/schemas/po", PO.as_bytes()), &state);
        assert_eq!(endpoint, Endpoint::SchemasPut);
        assert_eq!(response.status, 201, "{}", body_text(&response));
        assert!(body_text(&response).contains(r#""replaced":false"#));
        // Replacing the same name answers 200.
        let (_, response) = handle(&request("PUT", "/schemas/po", PO.as_bytes()), &state);
        assert_eq!(response.status, 200);
        assert!(body_text(&response).contains(r#""replaced":true"#));
        let (_, response) = handle(&get("/schemas"), &state);
        let listing = body_text(&response);
        assert!(listing.contains(r#""count":1"#), "{listing}");
        assert!(listing.contains(r#""name":"po""#));
        let (endpoint, response) =
            handle(&request("POST", "/match?source=po&target=po", b""), &state);
        assert_eq!(endpoint, Endpoint::Match);
        assert_eq!(response.status, 200);
        let text = body_text(&response);
        assert!(text.contains(r#""total_qom":1"#), "self-match: {text}");
        assert!(text.contains(r#""category":"#));
    }

    #[test]
    fn v1_paths_route_and_legacy_paths_carry_deprecation() {
        let state = state();
        let (endpoint, response) = handle(&get("/v1/healthz"), &state);
        assert_eq!(endpoint, Endpoint::Healthz);
        assert_eq!(response.status, 200);
        assert!(response.headers.is_empty(), "versioned paths are canonical");
        let (endpoint, response) = handle(&get("/healthz"), &state);
        assert_eq!(endpoint, Endpoint::Healthz);
        assert!(response
            .headers
            .iter()
            .any(|(k, v)| *k == "deprecation" && v == "true"));
        assert!(response
            .headers
            .iter()
            .any(|(k, v)| *k == "link" && v == "</v1/healthz>; rel=\"successor-version\""));
        // Same body either way; only the headers differ.
        let (_, v1) = handle(&get("/v1/schemas"), &state);
        let (_, legacy) = handle(&get("/schemas"), &state);
        assert_eq!(v1.body, legacy.body);
        assert!(body_text(&v1).contains("deprecated aliases"));
        // /v1 with an unknown remainder is still a 404, without headers.
        let (endpoint, response) = handle(&get("/v1/nope"), &state);
        assert_eq!(endpoint, Endpoint::Other);
        assert_eq!(response.status, 404);
        assert!(response.headers.is_empty());
        // Ingest + match through the versioned surface.
        let (_, response) = handle(&request("PUT", "/v1/schemas/po", PO.as_bytes()), &state);
        assert_eq!(response.status, 201, "{}", body_text(&response));
        let (endpoint, response) = handle(
            &request("POST", "/v1/match?source=po&target=po", b""),
            &state,
        );
        assert_eq!(endpoint, Endpoint::Match);
        assert_eq!(response.status, 200);
        assert!(response.headers.is_empty());
    }

    #[test]
    fn put_validation_errors() {
        let state = state();
        let bad_name = request("PUT", "/schemas/bad%20name", PO.as_bytes());
        let (_, response) = handle(&bad_name, &state);
        assert_eq!(response.status, 400);
        assert!(body_text(&response).contains("invalid_name"));
        let (_, response) = handle(&request("PUT", "/schemas/po", b""), &state);
        assert_eq!(response.status, 400);
        assert!(body_text(&response).contains("empty_body"));
        let (_, response) = handle(&request("PUT", "/schemas/po", b"<not-a-schema/>"), &state);
        assert_eq!(response.status, 400);
        assert!(body_text(&response).contains("invalid_schema"));
    }

    #[test]
    fn limit_violations_answer_413_with_the_offset() {
        let mut state = state();
        state.limits = IngestLimits {
            max_input_bytes: 16,
            ..IngestLimits::default()
        };
        let (_, response) = handle(&request("PUT", "/schemas/po", PO.as_bytes()), &state);
        assert_eq!(response.status, 413);
        let text = body_text(&response);
        assert!(text.contains("limit_exceeded"), "{text}");
        assert!(text.contains("first offending byte at offset"), "{text}");
        assert_eq!(state.registry.len(), 0);
    }

    #[test]
    fn match_parameter_errors() {
        let state = state();
        handle(&request("PUT", "/schemas/po", PO.as_bytes()), &state);
        let cases = [
            ("/match", 400, "missing_parameter"),
            ("/match?source=po", 400, "missing_parameter"),
            ("/match?source=po&target=nope", 404, "unknown_schema"),
            (
                "/match?source=po&target=po&algo=quantum",
                400,
                "unknown_algo",
            ),
            (
                "/match?source=po&target=po&threshold=2",
                400,
                "bad_threshold",
            ),
            (
                "/match?source=po&target=po&algo=composite&components=psychic",
                400,
                "unknown_component",
            ),
            (
                "/match?source=po&target=po&algo=composite&agg=median",
                400,
                "unknown_aggregation",
            ),
            (
                "/match?source=po&target=po&algo=structural&explain=1",
                400,
                "bad_request",
            ),
            (
                "/match?source=po&target=po&precision=f16",
                400,
                "bad_precision",
            ),
        ];
        for (target, status, kind) in cases {
            let (_, response) = handle(&request("POST", target, b""), &state);
            assert_eq!(response.status, status, "{target}");
            assert!(body_text(&response).contains(kind), "{target}");
        }
    }

    #[test]
    fn precision_param_selects_f32_storage_and_is_echoed() {
        let state = state();
        handle(&request("PUT", "/schemas/po", PO.as_bytes()), &state);
        let (_, default) = handle(&request("POST", "/match?source=po&target=po", b""), &state);
        assert!(body_text(&default).contains(r#""precision":"f64""#));
        let (_, lean) = handle(
            &request("POST", "/match?source=po&target=po&precision=f32", b""),
            &state,
        );
        assert_eq!(lean.status, 200);
        let text = body_text(&lean);
        assert!(text.contains(r#""precision":"f32""#), "{text}");
        // A self-match is exact in either storage width.
        assert!(text.contains(r#""total_qom":1"#), "{text}");
        let (_, topk) = handle(
            &request("POST", "/match/topk?source=po&precision=f32", b""),
            &state,
        );
        assert_eq!(topk.status, 200);
        assert!(body_text(&topk).contains(r#""precision":"f32""#));
    }

    #[test]
    fn explain_adds_explanations_for_accepted_pairs() {
        let state = state();
        handle(&request("PUT", "/schemas/po", PO.as_bytes()), &state);
        let (_, response) = handle(
            &request("POST", "/match?source=po&target=po&explain=1", b""),
            &state,
        );
        assert_eq!(response.status, 200);
        let text = body_text(&response);
        assert!(text.contains(r#""explanations":["#), "{text}");
    }

    #[test]
    fn topk_ranks_and_validates() {
        let state = state();
        let order = PO.replace("\"PO\"", "\"Order\"");
        let book = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="Book">
    <xs:complexType><xs:sequence>
      <xs:element name="Title" type="xs:string"/>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>"#;
        for (name, body) in [("po", PO), ("order", &order), ("book", book)] {
            let (_, response) = handle(
                &request("PUT", &format!("/schemas/{name}"), body.as_bytes()),
                &state,
            );
            assert_eq!(response.status, 201, "{name}");
        }
        let (endpoint, response) =
            handle(&request("POST", "/match/topk?source=po&k=2", b""), &state);
        assert_eq!(endpoint, Endpoint::MatchTopk);
        assert_eq!(response.status, 200);
        let text = body_text(&response);
        let order_pos = text.find(r#""target":"order""#).expect("order ranked");
        let book_pos = text.find(r#""target":"book""#).expect("book ranked");
        assert!(
            order_pos < book_pos,
            "near-identical schema outranks the unrelated one: {text}"
        );
        let (_, response) = handle(&request("POST", "/match/topk?source=ghost", b""), &state);
        assert_eq!(response.status, 404);
        // k=0 and non-numeric k both answer a typed 400 naming the value.
        for target in ["/match/topk?source=po&k=0", "/match/topk?source=po&k=three"] {
            let (_, response) = handle(&request("POST", target, b""), &state);
            assert_eq!(response.status, 400, "{target}");
            let text = body_text(&response);
            assert!(text.contains("bad_k"), "{target}: {text}");
        }
    }

    #[test]
    fn topk_index_param_validates_and_echoes() {
        let state = state();
        handle(&request("PUT", "/schemas/po", PO.as_bytes()), &state);
        // The default policy is auto, echoed in every topk body.
        let (_, response) = handle(&request("POST", "/match/topk?source=po", b""), &state);
        assert_eq!(response.status, 200);
        assert!(body_text(&response).contains(r#""index":"auto""#));
        for policy in ["off", "auto", "force"] {
            let (_, response) = handle(
                &request(
                    "POST",
                    &format!("/match/topk?source=po&index={policy}"),
                    b"",
                ),
                &state,
            );
            assert_eq!(response.status, 200, "{policy}");
            let text = body_text(&response);
            assert!(text.contains(&format!(r#""index":"{policy}""#)), "{text}");
        }
        let (_, response) = handle(
            &request("POST", "/match/topk?source=po&index=banana", b""),
            &state,
        );
        assert_eq!(response.status, 400);
        assert!(body_text(&response).contains("bad_index"));
    }

    #[test]
    fn cupid_and_tree_edit_run_and_echo_their_algo() {
        let state = state();
        handle(&request("PUT", "/schemas/po", PO.as_bytes()), &state);
        let (_, response) = handle(
            &request("POST", "/match?source=po&target=po&algo=cupid", b""),
            &state,
        );
        assert_eq!(response.status, 200, "{}", body_text(&response));
        let text = body_text(&response);
        assert!(text.contains(r#""algo":"cupid""#), "{text}");
        // CUPID's default threshold is its th_accept, not the hybrid 0.78.
        assert!(text.contains(r#""threshold":0.7"#), "{text}");
        assert!(
            !text.contains(r#""category""#),
            "the QoM category is hybrid-only: {text}"
        );
        // A self-match maps every leaf onto itself.
        assert!(text.contains(r#""source_path""#), "{text}");
        let (_, response) = handle(
            &request("POST", "/match?source=po&target=po&algo=tree-edit", b""),
            &state,
        );
        assert_eq!(response.status, 200, "{}", body_text(&response));
        let text = body_text(&response);
        assert!(text.contains(r#""algo":"tree-edit""#), "{text}");
        // The unknown-algo error advertises the full algorithm list.
        let (_, response) = handle(
            &request("POST", "/match?source=po&target=po&algo=qmatchx", b""),
            &state,
        );
        assert_eq!(response.status, 400);
        let text = body_text(&response);
        assert!(text.contains("unknown_algo"), "{text}");
        assert!(text.contains("cupid"), "{text}");
        assert!(text.contains("tree-edit"), "{text}");
    }

    #[test]
    fn topk_algo_param_validates_and_echoes() {
        let state = state();
        let order = PO.replace("\"PO\"", "\"Order\"");
        for (name, body) in [("po", PO), ("order", order.as_str())] {
            handle(
                &request("PUT", &format!("/schemas/{name}"), body.as_bytes()),
                &state,
            );
        }
        let (_, response) = handle(&request("POST", "/match/topk?source=po", b""), &state);
        assert_eq!(response.status, 200);
        assert!(body_text(&response).contains(r#""algo":"hybrid""#));
        let (_, response) = handle(
            &request("POST", "/match/topk?source=po&algo=cupid", b""),
            &state,
        );
        assert_eq!(response.status, 200, "{}", body_text(&response));
        let text = body_text(&response);
        assert!(text.contains(r#""algo":"cupid""#), "{text}");
        assert!(text.contains(r#""target":"order""#), "{text}");
        // Only ranking engines are accepted on topk.
        for bad in ["structural", "banana"] {
            let (_, response) = handle(
                &request("POST", &format!("/match/topk?source=po&algo={bad}"), b""),
                &state,
            );
            assert_eq!(response.status, 400, "{bad}");
            let text = body_text(&response);
            assert!(text.contains("unknown_algo"), "{bad}: {text}");
            assert!(text.contains("hybrid|cupid"), "{bad}: {text}");
        }
    }

    #[test]
    fn metrics_expose_the_wal_live_fraction() {
        // Without persistence the WAL is vacuously all-live.
        let bare = state();
        let (_, response) = handle(&get("/metrics"), &bare);
        assert_eq!(response.status, 200);
        let text = body_text(&response);
        assert!(text.contains("\nqmatch_wal_live_fraction 1\n"), "{text}");
        // With a WAL whose only schema was tombstoned, nothing is live.
        let dir = std::env::temp_dir().join(format!("qmatch-metrics-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (persist, _) = Persist::open(&dir, 1 << 20).unwrap();
        persist.append("po", PO.as_bytes()).unwrap();
        persist.append_tombstone("po").unwrap();
        let mut state = state();
        state.persist = Some(persist);
        let (_, response) = handle(&get("/metrics"), &state);
        let text = body_text(&response);
        assert!(text.contains("\nqmatch_wal_live_fraction 0\n"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn forced_index_is_shard_count_invariant_and_matches_exhaustive() {
        let single = state();
        let sharded = state_with(Registry::new(
            (0..4)
                .map(|i| Arc::new(Shard::new(i, MatchSession::new(MatchConfig::default()), 8)))
                .collect(),
        ));
        // Near-duplicates of the source (index candidates) plus one
        // unrelated schema the prefilter prunes.
        let order = PO.replace("\"PO\"", "\"Order\"");
        let purchase = PO.replace("\"PO\"", "\"Purchase\"");
        let invoice = PO.replace("\"PO\"", "\"Invoice\"");
        let book = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="Book">
    <xs:complexType><xs:sequence>
      <xs:element name="Title" type="xs:string"/>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>"#;
        for (name, body) in [
            ("po", PO),
            ("order", order.as_str()),
            ("purchase", &purchase),
            ("invoice", &invoice),
            ("book", book),
        ] {
            for s in [&single, &sharded] {
                let (_, response) = handle(
                    &request("PUT", &format!("/schemas/{name}"), body.as_bytes()),
                    s,
                );
                assert_eq!(response.status, 201, "{name}");
            }
        }
        // The candidate predicate is pair-local, so the union of per-shard
        // candidate sets equals the single-shard set: indexed rankings are
        // byte-identical across partitionings.
        for target in [
            "/match/topk?source=po&k=5&index=force",
            "/match/topk?source=po&k=2&index=force",
        ] {
            let (_, a) = handle(&request("POST", target, b""), &single);
            let (_, b) = handle(&request("POST", target, b""), &sharded);
            assert_eq!(a.status, 200, "{target}");
            assert_eq!(a.body, b.body, "{target}");
        }
        // The near-duplicates all survive the prefilter, so the forced
        // ranking matches the exhaustive one apart from the echoed policy.
        let (_, off) = handle(
            &request("POST", "/match/topk?source=po&k=3&index=off", b""),
            &single,
        );
        let (_, force) = handle(
            &request("POST", "/match/topk?source=po&k=3&index=force", b""),
            &single,
        );
        assert_eq!(
            body_text(&off).replace(r#""index":"off""#, r#""index":"force""#),
            body_text(&force)
        );
        // The forced queries exercised the shard indexes: candidates were
        // admitted and the unrelated schema was pruned at least once.
        let snapshot = single.registry.snapshot();
        assert!(snapshot.index_candidates > 0, "{snapshot:?}");
        assert!(snapshot.index_filtered > 0, "{snapshot:?}");
    }

    #[test]
    fn sharded_topk_is_byte_identical_to_single_shard() {
        let single = state();
        let sharded = state_with(Registry::new(
            (0..4)
                .map(|i| Arc::new(Shard::new(i, MatchSession::new(MatchConfig::default()), 8)))
                .collect(),
        ));
        let order = PO.replace("\"PO\"", "\"Order\"");
        let purchase = PO.replace("\"PO\"", "\"Purchase\"");
        for (name, body) in [
            ("po", PO),
            ("order", order.as_str()),
            ("purchase", &purchase),
        ] {
            for s in [&single, &sharded] {
                let (_, response) = handle(
                    &request("PUT", &format!("/schemas/{name}"), body.as_bytes()),
                    s,
                );
                assert_eq!(response.status, 201, "{name}");
            }
        }
        for target in [
            "/match/topk?source=po&k=5",
            "/match/topk?source=po&k=1",
            "/match?source=po&target=order",
        ] {
            let (_, a) = handle(&request("POST", target, b""), &single);
            let (_, b) = handle(&request("POST", target, b""), &sharded);
            assert_eq!(a.body, b.body, "{target}");
        }
        // The same partials merged through the gather heap in any arrival
        // order render identically.
        let plan = validate_topk(
            &request("POST", "/match/topk?source=po&k=5", b""),
            &sharded.registry,
        )
        .expect("valid");
        let mut partials = Vec::new();
        for i in 0..sharded.registry.shard_count() {
            partials.extend(topk_partial(&sharded, i, &plan));
        }
        let forward = topk_render(&plan, partials.clone()).body;
        partials.reverse();
        let reversed = topk_render(&plan, partials).body;
        assert_eq!(forward, reversed, "gather order must not matter");
    }

    #[test]
    fn disposition_routes_by_owner_shard() {
        let state = state_with(Registry::new(
            (0..4)
                .map(|i| Arc::new(Shard::new(i, MatchSession::new(MatchConfig::default()), 8)))
                .collect(),
        ));
        let registry = &state.registry;
        assert_eq!(disposition(&get("/healthz"), registry), Disposition::Inline);
        assert_eq!(disposition(&get("/metrics"), registry), Disposition::Inline);
        assert_eq!(
            disposition(&request("PUT", "/schemas/po", b"<x/>"), registry),
            Disposition::Shard {
                shard: registry.shard_of("po"),
                endpoint: Endpoint::SchemasPut,
            }
        );
        // The /v1 alias dispatches identically.
        assert_eq!(
            disposition(&request("PUT", "/v1/schemas/po", b"<x/>"), registry),
            disposition(&request("PUT", "/schemas/po", b"<x/>"), registry),
        );
        assert_eq!(
            disposition(
                &request("POST", "/match?source=abc&target=x", b""),
                registry
            ),
            Disposition::Shard {
                shard: registry.shard_of("abc"),
                endpoint: Endpoint::Match,
            }
        );
        assert_eq!(
            disposition(&request("POST", "/match", b""), registry),
            Disposition::Inline,
            "a 400 must not occupy the match queue"
        );
        assert_eq!(
            disposition(&request("POST", "/match/topk?source=abc", b""), registry),
            Disposition::Scatter
        );
        // Wrong-method hits stay inline (they answer 405/404).
        assert_eq!(
            disposition(&request("GET", "/match", b""), registry),
            Disposition::Inline
        );
    }

    #[test]
    fn finalize_marks_only_legacy_recognized_endpoints() {
        let plain = || Response::json(200, "{}".to_owned());
        let legacy = finalize("/healthz", Endpoint::Healthz, plain());
        assert!(legacy.headers.iter().any(|(k, _)| *k == "deprecation"));
        let versioned = finalize("/v1/healthz", Endpoint::Healthz, plain());
        assert!(versioned.headers.is_empty());
        let unknown = finalize("/nope", Endpoint::Other, plain());
        assert!(unknown.headers.is_empty());
    }
}
