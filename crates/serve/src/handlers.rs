//! Request routing and endpoint logic.
//!
//! Every handler is a pure function of the request and the shared state
//! (registry + metrics + limits), returning the [`Endpoint`] label for
//! metrics and a [`Response`]. Match responses are deterministic functions
//! of the registry contents and the query — they carry no counters — so
//! concurrent clients asking the same question get byte-identical bodies
//! (asserted in `tests/serve_http.rs`).

use crate::http::{Request, Response};
use crate::json::Json;
use crate::metrics::{Endpoint, Metrics};
use crate::registry::Registry;
use qmatch_core::mapping::{extract_mapping, path_of};
use qmatch_core::{
    Aggregation, Algorithm, Component, MatchOutcome, OwnedPreparedSchema, Precision,
};
use qmatch_xsd::{parse_schema_with_limits, IngestLimits, SchemaTree, XsdError};
use std::sync::Arc;

/// Longest accepted schema name.
const MAX_NAME_LEN: usize = 128;

/// Routes one request to its handler.
///
/// The canonical API surface lives under `/v1/...`. The original
/// unversioned paths keep working as aliases, but their responses carry
/// `Deprecation: true` and a `Link: </v1/...>; rel="successor-version"`
/// header pointing at the versioned route (and `GET /schemas` documents
/// the deprecation in its body).
pub fn handle(
    req: &Request,
    registry: &Registry,
    metrics: &Metrics,
    limits: &IngestLimits,
) -> (Endpoint, Response) {
    let (path, versioned) = match req.path.strip_prefix("/v1") {
        Some(rest) if rest.starts_with('/') => (rest, true),
        _ => (req.path.as_str(), false),
    };
    let (endpoint, response) = route(req, path, registry, metrics, limits);
    let response = if versioned || endpoint == Endpoint::Other {
        response
    } else {
        response.with_header("deprecation", "true").with_header(
            "link",
            format!("</v1{}>; rel=\"successor-version\"", req.path),
        )
    };
    (endpoint, response)
}

/// Dispatches on the (already version-stripped) path.
fn route(
    req: &Request,
    path: &str,
    registry: &Registry,
    metrics: &Metrics,
    limits: &IngestLimits,
) -> (Endpoint, Response) {
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => (
            Endpoint::Healthz,
            Response::json(200, Json::obj().field("status", Json::str("ok")).render()),
        ),
        ("GET", "/metrics") => (
            Endpoint::Metrics,
            Response::text(200, metrics.render(&registry.snapshot())),
        ),
        ("GET", "/schemas") => (Endpoint::SchemasList, list_schemas(registry)),
        ("PUT", path)
            if path
                .strip_prefix("/schemas/")
                .is_some_and(|n| !n.is_empty()) =>
        {
            let name = path.strip_prefix("/schemas/").expect("guard");
            (
                Endpoint::SchemasPut,
                put_schema(name, &req.body, registry, metrics, limits),
            )
        }
        ("POST", "/match") => (Endpoint::Match, do_match(req, registry)),
        ("POST", "/match/topk") => (Endpoint::MatchTopk, do_topk(req, registry)),
        (_, "/healthz" | "/metrics" | "/schemas" | "/match" | "/match/topk") => (
            Endpoint::Other,
            error(405, "method_not_allowed", "method not allowed on this path"),
        ),
        (method, path) if path.starts_with("/schemas/") && method != "PUT" => (
            Endpoint::Other,
            error(405, "method_not_allowed", "schemas are registered with PUT"),
        ),
        _ => (Endpoint::Other, error(404, "not_found", "no such endpoint")),
    }
}

/// Builds the uniform error body `{"error":{"kind":...,"message":...}}`.
pub fn error(status: u16, kind: &str, message: impl Into<String>) -> Response {
    Response::json(
        status,
        Json::obj()
            .field(
                "error",
                Json::obj()
                    .field("kind", Json::str(kind))
                    .field("message", Json::str(message.into())),
            )
            .render(),
    )
}

fn list_schemas(registry: &Registry) -> Response {
    let infos = registry.list();
    let stats = registry.session().cache_stats();
    let schemas = infos
        .into_iter()
        .map(|info| {
            Json::obj()
                .field("name", Json::str(info.name))
                .field("nodes", Json::UInt(info.nodes as u64))
                .field("max_depth", Json::UInt(info.max_depth as u64))
                .field("source_bytes", Json::UInt(info.source_bytes))
                .field("resident", Json::Bool(info.resident))
        })
        .collect();
    Response::json(
        200,
        Json::obj()
            .field(
                "docs",
                Json::str(
                    "API v1: use /v1/schemas, /v1/match, /v1/match/topk, /v1/metrics, \
                     /v1/healthz; unversioned paths are deprecated aliases",
                ),
            )
            .field("count", Json::UInt(registry.len() as u64))
            .field("schemas", Json::Arr(schemas))
            .field(
                "label_cache",
                Json::obj()
                    .field("hits", Json::UInt(stats.hits))
                    .field("misses", Json::UInt(stats.misses))
                    .field("hit_rate", Json::Num(stats.hit_rate())),
            )
            .render(),
    )
}

fn put_schema(
    name: &str,
    body: &[u8],
    registry: &Registry,
    metrics: &Metrics,
    limits: &IngestLimits,
) -> Response {
    if name.len() > MAX_NAME_LEN
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
    {
        return error(
            400,
            "invalid_name",
            "schema names are 1-128 characters of [A-Za-z0-9._-]",
        );
    }
    if body.is_empty() {
        return error(
            400,
            "empty_body",
            "PUT a schema document as the request body",
        );
    }
    let Ok(text) = std::str::from_utf8(body) else {
        return error(400, "invalid_schema", "schema body is not UTF-8");
    };
    let tree = parse_schema_with_limits(text, limits)
        .and_then(|schema| SchemaTree::compile_with_limits(&schema, limits));
    let tree = match tree {
        Ok(tree) => tree,
        Err(e @ XsdError::LimitExceeded { .. }) => {
            metrics.add_rejected_by_limits();
            return error(413, "limit_exceeded", e.to_string());
        }
        Err(e) => return error(400, "invalid_schema", e.to_string()),
    };
    metrics.add_ingested(body.len() as u64);
    let registered = registry.register(name, tree, body.len() as u64);
    Response::json(
        if registered.replaced { 200 } else { 201 },
        Json::obj()
            .field("name", Json::str(name))
            .field("replaced", Json::Bool(registered.replaced))
            .field("nodes", Json::UInt(registered.nodes as u64))
            .field("max_depth", Json::UInt(registered.max_depth as u64))
            .render(),
    )
}

/// Which algorithm a match request selects, with its default acceptance
/// threshold (the same defaults the CLI uses).
enum Algo {
    Hybrid,
    Linguistic,
    Structural,
    Composite {
        components: Vec<Component>,
        aggregation: Aggregation,
    },
}

fn parse_algo(req: &Request) -> Result<Algo, Response> {
    match req.query_param("algo").unwrap_or("hybrid") {
        "hybrid" => Ok(Algo::Hybrid),
        "linguistic" => Ok(Algo::Linguistic),
        "structural" => Ok(Algo::Structural),
        "composite" => {
            let components = match req.query_param("components") {
                None => vec![Component::Linguistic, Component::Structural],
                Some(list) => list
                    .split(',')
                    .map(|c| match c.trim() {
                        "linguistic" => Ok(Component::Linguistic),
                        "structural" => Ok(Component::Structural),
                        "hybrid" => Ok(Component::Hybrid),
                        "tree-edit" => Ok(Component::TreeEdit),
                        other => Err(error(
                            400,
                            "unknown_component",
                            format!("unknown composite component {other:?}"),
                        )),
                    })
                    .collect::<Result<_, _>>()?,
            };
            let aggregation = match req.query_param("agg").unwrap_or("average") {
                "max" => Aggregation::Max,
                "min" => Aggregation::Min,
                "average" => Aggregation::Average,
                other => {
                    return Err(error(
                        400,
                        "unknown_aggregation",
                        format!("unknown aggregation {other:?} (use max|min|average)"),
                    ))
                }
            };
            Ok(Algo::Composite {
                components,
                aggregation,
            })
        }
        other => Err(error(
            400,
            "unknown_algo",
            format!("unknown algorithm {other:?} (use hybrid|linguistic|structural|composite)"),
        )),
    }
}

fn required_schema(
    req: &Request,
    registry: &Registry,
    param: &str,
) -> Result<(String, Arc<OwnedPreparedSchema>), Response> {
    let name = req
        .query_param(param)
        .ok_or_else(|| {
            error(
                400,
                "missing_parameter",
                format!("query parameter {param:?} is required"),
            )
        })?
        .to_owned();
    let prepared = registry.prepared(&name).ok_or_else(|| {
        error(
            404,
            "unknown_schema",
            format!("no schema named {name:?} is registered"),
        )
    })?;
    Ok((name, prepared))
}

fn run_algo(
    algo: &Algo,
    registry: &Registry,
    source: &OwnedPreparedSchema,
    target: &OwnedPreparedSchema,
    precision: Precision,
) -> Result<(MatchOutcome, f64), Response> {
    let session = registry.session();
    let config = session.config();
    let (source, target) = (source.prepared(), target.prepared());
    let (algorithm, default_threshold) = match algo {
        Algo::Hybrid => (Algorithm::Hybrid, config.weights.acceptance_threshold()),
        Algo::Linguistic => (Algorithm::Linguistic, 0.5),
        Algo::Structural => (Algorithm::Structural, 0.95),
        Algo::Composite {
            components,
            aggregation,
        } => (
            Algorithm::Composite {
                components: components.clone(),
                aggregation: aggregation.clone(),
            },
            config.weights.acceptance_threshold(),
        ),
    };
    session
        .run_with_precision(&algorithm, source, target, precision)
        .map(|outcome| (outcome, default_threshold))
        .map_err(|e| error(400, "bad_composite", e.to_string()))
}

fn do_match(req: &Request, registry: &Registry) -> Response {
    let algo = match parse_algo(req) {
        Ok(algo) => algo,
        Err(response) => return response,
    };
    let explain = req.query_param("explain") == Some("1");
    // Reject the invalid combination up front, before the (potentially
    // expensive) match runs.
    if explain && !matches!(algo, Algo::Hybrid) {
        return error(
            400,
            "bad_request",
            "explain=1 requires the hybrid algorithm",
        );
    }
    let lookup = required_schema(req, registry, "source")
        .and_then(|s| required_schema(req, registry, "target").map(|t| (s, t)));
    let ((source_name, source), (target_name, target)) = match lookup {
        Ok(pair) => pair,
        Err(response) => return response,
    };
    let threshold = match parse_threshold(req) {
        Ok(t) => t,
        Err(response) => return response,
    };
    let precision = match parse_precision(req) {
        Ok(p) => p.unwrap_or_else(|| registry.session().config().precision),
        Err(response) => return response,
    };
    let (outcome, default_threshold) = match run_algo(&algo, registry, &source, &target, precision)
    {
        Ok(pair) => pair,
        Err(response) => return response,
    };
    let threshold = threshold.unwrap_or(default_threshold);
    let mapping = extract_mapping(&outcome.matrix, threshold);
    let session = registry.session();
    let (sp, tp) = (source.prepared(), target.prepared());
    let pairs = mapping
        .pairs
        .iter()
        .map(|c| {
            Json::obj()
                .field("source_path", Json::str(path_of(sp.tree(), c.source)))
                .field("target_path", Json::str(path_of(tp.tree(), c.target)))
                .field("score", Json::Num(c.score))
        })
        .collect();
    let mut body = Json::obj()
        .field("source", Json::str(source_name))
        .field("target", Json::str(target_name))
        .field(
            "algo",
            Json::str(req.query_param("algo").unwrap_or("hybrid")),
        )
        .field("threshold", Json::Num(threshold))
        .field("precision", Json::str(outcome.matrix.precision().name()))
        .field("total_qom", Json::Num(outcome.total_qom))
        .field("matches", Json::UInt(mapping.len() as u64))
        .field("mapping", Json::Arr(pairs));
    if matches!(algo, Algo::Hybrid) {
        let category = session.category(sp, tp, &outcome);
        body = body.field("category", Json::str(category.to_string()));
        if explain {
            let explanations = mapping
                .pairs
                .iter()
                .map(|c| {
                    Json::str(
                        session
                            .explain(sp, tp, c.source, c.target, &outcome.matrix)
                            .to_string(),
                    )
                })
                .collect();
            body = body.field("explanations", Json::Arr(explanations));
        }
    }
    Response::json(200, body.render())
}

fn parse_threshold(req: &Request) -> Result<Option<f64>, Response> {
    match req.query_param("threshold") {
        None => Ok(None),
        Some(raw) => match raw.parse::<f64>() {
            Ok(t) if (0.0..=1.0).contains(&t) => Ok(Some(t)),
            _ => Err(error(
                400,
                "bad_threshold",
                format!("threshold {raw:?} is not a number in [0, 1]"),
            )),
        },
    }
}

/// The `precision=` query parameter (`f64`/`f32` matrix storage; `None`
/// falls back to the session default).
fn parse_precision(req: &Request) -> Result<Option<Precision>, Response> {
    match req.query_param("precision") {
        None => Ok(None),
        Some(raw) => raw
            .parse::<Precision>()
            .map(Some)
            .map_err(|e| error(400, "bad_precision", e.to_string())),
    }
}

fn do_topk(req: &Request, registry: &Registry) -> Response {
    let (source_name, source) = match required_schema(req, registry, "source") {
        Ok(pair) => pair,
        Err(response) => return response,
    };
    let k = match req.query_param("k").unwrap_or("5").parse::<usize>() {
        Ok(k) if k > 0 => k,
        _ => return error(400, "bad_k", "k must be a positive integer"),
    };
    let session = registry.session();
    let precision = match parse_precision(req) {
        Ok(p) => p.unwrap_or_else(|| session.config().precision),
        Err(response) => return response,
    };
    let mut ranking: Vec<(String, f64)> = Vec::new();
    for name in registry.names() {
        if name == source_name {
            continue;
        }
        // The registry only drops names under concurrent replacement, and
        // replacement never removes: the lookup cannot fail here, but stay
        // defensive and skip rather than 500.
        let Some(target) = registry.prepared(&name) else {
            continue;
        };
        // Only the root QoM survives the loop, so the matrix goes straight
        // back into the session arena for the next candidate to reuse.
        let outcome = session
            .run_with_precision(
                &Algorithm::Hybrid,
                source.prepared(),
                target.prepared(),
                precision,
            )
            .expect("hybrid is infallible");
        ranking.push((name, outcome.total_qom));
        session.recycle(outcome);
    }
    // Descending root QoM; ties broken by name so the order is total.
    ranking.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ranking.truncate(k);
    let entries = ranking
        .into_iter()
        .map(|(name, qom)| {
            Json::obj()
                .field("target", Json::str(name))
                .field("total_qom", Json::Num(qom))
        })
        .collect();
    Response::json(
        200,
        Json::obj()
            .field("source", Json::str(source_name))
            .field("k", Json::UInt(k as u64))
            .field("precision", Json::str(precision.name()))
            .field("ranking", Json::Arr(entries))
            .render(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmatch_core::model::MatchConfig;
    use qmatch_core::MatchSession;

    const PO: &str = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="PO">
    <xs:complexType><xs:sequence>
      <xs:element name="OrderNo" type="xs:string"/>
      <xs:element name="Qty" type="xs:int"/>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>"#;

    fn state() -> (Registry, Metrics, IngestLimits) {
        (
            Registry::new(MatchSession::new(MatchConfig::default()), 8),
            Metrics::new(),
            IngestLimits::default(),
        )
    }

    fn get(path: &str) -> Request {
        request("GET", path, b"")
    }

    fn request(method: &str, target: &str, body: &[u8]) -> Request {
        let head = crate::http::parse_head(&format!("{method} {target} HTTP/1.1")).unwrap();
        Request {
            method: head.method,
            path: head.path,
            query: head.query,
            headers: head.headers,
            body: body.to_vec(),
            keep_alive: true,
        }
    }

    fn body_text(response: &Response) -> String {
        String::from_utf8(response.body.clone()).unwrap()
    }

    #[test]
    fn healthz_and_unknown_paths() {
        let (registry, metrics, limits) = state();
        let (endpoint, response) = handle(&get("/healthz"), &registry, &metrics, &limits);
        assert_eq!(endpoint, Endpoint::Healthz);
        assert_eq!(response.status, 200);
        assert_eq!(body_text(&response), r#"{"status":"ok"}"#);
        let (endpoint, response) = handle(&get("/nope"), &registry, &metrics, &limits);
        assert_eq!(endpoint, Endpoint::Other);
        assert_eq!(response.status, 404);
        assert!(body_text(&response).contains("not_found"));
        let (_, response) = handle(
            &request("POST", "/healthz", b""),
            &registry,
            &metrics,
            &limits,
        );
        assert_eq!(response.status, 405);
        let (_, response) = handle(
            &request("GET", "/schemas/po", b""),
            &registry,
            &metrics,
            &limits,
        );
        assert_eq!(response.status, 405, "schemas/{{name}} is PUT-only");
    }

    #[test]
    fn put_then_list_then_match() {
        let (registry, metrics, limits) = state();
        let (endpoint, response) = handle(
            &request("PUT", "/schemas/po", PO.as_bytes()),
            &registry,
            &metrics,
            &limits,
        );
        assert_eq!(endpoint, Endpoint::SchemasPut);
        assert_eq!(response.status, 201, "{}", body_text(&response));
        assert!(body_text(&response).contains(r#""replaced":false"#));
        // Replacing the same name answers 200.
        let (_, response) = handle(
            &request("PUT", "/schemas/po", PO.as_bytes()),
            &registry,
            &metrics,
            &limits,
        );
        assert_eq!(response.status, 200);
        assert!(body_text(&response).contains(r#""replaced":true"#));
        let (_, response) = handle(&get("/schemas"), &registry, &metrics, &limits);
        let listing = body_text(&response);
        assert!(listing.contains(r#""count":1"#), "{listing}");
        assert!(listing.contains(r#""name":"po""#));
        let (endpoint, response) = handle(
            &request("POST", "/match?source=po&target=po", b""),
            &registry,
            &metrics,
            &limits,
        );
        assert_eq!(endpoint, Endpoint::Match);
        assert_eq!(response.status, 200);
        let text = body_text(&response);
        assert!(text.contains(r#""total_qom":1"#), "self-match: {text}");
        assert!(text.contains(r#""category":"#));
    }

    #[test]
    fn v1_paths_route_and_legacy_paths_carry_deprecation() {
        let (registry, metrics, limits) = state();
        let (endpoint, response) = handle(&get("/v1/healthz"), &registry, &metrics, &limits);
        assert_eq!(endpoint, Endpoint::Healthz);
        assert_eq!(response.status, 200);
        assert!(response.headers.is_empty(), "versioned paths are canonical");
        let (endpoint, response) = handle(&get("/healthz"), &registry, &metrics, &limits);
        assert_eq!(endpoint, Endpoint::Healthz);
        assert!(response
            .headers
            .iter()
            .any(|(k, v)| *k == "deprecation" && v == "true"));
        assert!(response
            .headers
            .iter()
            .any(|(k, v)| *k == "link" && v == "</v1/healthz>; rel=\"successor-version\""));
        // Same body either way; only the headers differ.
        let (_, v1) = handle(&get("/v1/schemas"), &registry, &metrics, &limits);
        let (_, legacy) = handle(&get("/schemas"), &registry, &metrics, &limits);
        assert_eq!(v1.body, legacy.body);
        assert!(body_text(&v1).contains("deprecated aliases"));
        // /v1 with an unknown remainder is still a 404, without headers.
        let (endpoint, response) = handle(&get("/v1/nope"), &registry, &metrics, &limits);
        assert_eq!(endpoint, Endpoint::Other);
        assert_eq!(response.status, 404);
        assert!(response.headers.is_empty());
        // Ingest + match through the versioned surface.
        let (_, response) = handle(
            &request("PUT", "/v1/schemas/po", PO.as_bytes()),
            &registry,
            &metrics,
            &limits,
        );
        assert_eq!(response.status, 201, "{}", body_text(&response));
        let (endpoint, response) = handle(
            &request("POST", "/v1/match?source=po&target=po", b""),
            &registry,
            &metrics,
            &limits,
        );
        assert_eq!(endpoint, Endpoint::Match);
        assert_eq!(response.status, 200);
        assert!(response.headers.is_empty());
    }

    #[test]
    fn put_validation_errors() {
        let (registry, metrics, limits) = state();
        let bad_name = request("PUT", "/schemas/bad%20name", PO.as_bytes());
        let (_, response) = handle(&bad_name, &registry, &metrics, &limits);
        assert_eq!(response.status, 400);
        assert!(body_text(&response).contains("invalid_name"));
        let (_, response) = handle(
            &request("PUT", "/schemas/po", b""),
            &registry,
            &metrics,
            &limits,
        );
        assert_eq!(response.status, 400);
        assert!(body_text(&response).contains("empty_body"));
        let (_, response) = handle(
            &request("PUT", "/schemas/po", b"<not-a-schema/>"),
            &registry,
            &metrics,
            &limits,
        );
        assert_eq!(response.status, 400);
        assert!(body_text(&response).contains("invalid_schema"));
    }

    #[test]
    fn limit_violations_answer_413_with_the_offset() {
        let (registry, metrics, _) = state();
        let tiny = IngestLimits {
            max_input_bytes: 16,
            ..IngestLimits::default()
        };
        let (_, response) = handle(
            &request("PUT", "/schemas/po", PO.as_bytes()),
            &registry,
            &metrics,
            &tiny,
        );
        assert_eq!(response.status, 413);
        let text = body_text(&response);
        assert!(text.contains("limit_exceeded"), "{text}");
        assert!(text.contains("first offending byte at offset"), "{text}");
        assert_eq!(registry.len(), 0);
    }

    #[test]
    fn match_parameter_errors() {
        let (registry, metrics, limits) = state();
        handle(
            &request("PUT", "/schemas/po", PO.as_bytes()),
            &registry,
            &metrics,
            &limits,
        );
        let cases = [
            ("/match", 400, "missing_parameter"),
            ("/match?source=po", 400, "missing_parameter"),
            ("/match?source=po&target=nope", 404, "unknown_schema"),
            (
                "/match?source=po&target=po&algo=quantum",
                400,
                "unknown_algo",
            ),
            (
                "/match?source=po&target=po&threshold=2",
                400,
                "bad_threshold",
            ),
            (
                "/match?source=po&target=po&algo=composite&components=psychic",
                400,
                "unknown_component",
            ),
            (
                "/match?source=po&target=po&algo=composite&agg=median",
                400,
                "unknown_aggregation",
            ),
            (
                "/match?source=po&target=po&algo=structural&explain=1",
                400,
                "bad_request",
            ),
            (
                "/match?source=po&target=po&precision=f16",
                400,
                "bad_precision",
            ),
        ];
        for (target, status, kind) in cases {
            let (_, response) = handle(&request("POST", target, b""), &registry, &metrics, &limits);
            assert_eq!(response.status, status, "{target}");
            assert!(body_text(&response).contains(kind), "{target}");
        }
    }

    #[test]
    fn precision_param_selects_f32_storage_and_is_echoed() {
        let (registry, metrics, limits) = state();
        handle(
            &request("PUT", "/schemas/po", PO.as_bytes()),
            &registry,
            &metrics,
            &limits,
        );
        let (_, default) = handle(
            &request("POST", "/match?source=po&target=po", b""),
            &registry,
            &metrics,
            &limits,
        );
        assert!(body_text(&default).contains(r#""precision":"f64""#));
        let (_, lean) = handle(
            &request("POST", "/match?source=po&target=po&precision=f32", b""),
            &registry,
            &metrics,
            &limits,
        );
        assert_eq!(lean.status, 200);
        let text = body_text(&lean);
        assert!(text.contains(r#""precision":"f32""#), "{text}");
        // A self-match is exact in either storage width.
        assert!(text.contains(r#""total_qom":1"#), "{text}");
        let (_, topk) = handle(
            &request("POST", "/match/topk?source=po&precision=f32", b""),
            &registry,
            &metrics,
            &limits,
        );
        assert_eq!(topk.status, 200);
        assert!(body_text(&topk).contains(r#""precision":"f32""#));
    }

    #[test]
    fn explain_adds_explanations_for_accepted_pairs() {
        let (registry, metrics, limits) = state();
        handle(
            &request("PUT", "/schemas/po", PO.as_bytes()),
            &registry,
            &metrics,
            &limits,
        );
        let (_, response) = handle(
            &request("POST", "/match?source=po&target=po&explain=1", b""),
            &registry,
            &metrics,
            &limits,
        );
        assert_eq!(response.status, 200);
        let text = body_text(&response);
        assert!(text.contains(r#""explanations":["#), "{text}");
    }

    #[test]
    fn topk_ranks_and_validates() {
        let (registry, metrics, limits) = state();
        let order = PO.replace("\"PO\"", "\"Order\"");
        let book = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="Book">
    <xs:complexType><xs:sequence>
      <xs:element name="Title" type="xs:string"/>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>"#;
        for (name, body) in [("po", PO), ("order", &order), ("book", book)] {
            let (_, response) = handle(
                &request("PUT", &format!("/schemas/{name}"), body.as_bytes()),
                &registry,
                &metrics,
                &limits,
            );
            assert_eq!(response.status, 201, "{name}");
        }
        let (endpoint, response) = handle(
            &request("POST", "/match/topk?source=po&k=2", b""),
            &registry,
            &metrics,
            &limits,
        );
        assert_eq!(endpoint, Endpoint::MatchTopk);
        assert_eq!(response.status, 200);
        let text = body_text(&response);
        let order_pos = text.find(r#""target":"order""#).expect("order ranked");
        let book_pos = text.find(r#""target":"book""#).expect("book ranked");
        assert!(
            order_pos < book_pos,
            "near-identical schema outranks the unrelated one: {text}"
        );
        let (_, response) = handle(
            &request("POST", "/match/topk?source=po&k=0", b""),
            &registry,
            &metrics,
            &limits,
        );
        assert_eq!(response.status, 400);
        let (_, response) = handle(
            &request("POST", "/match/topk?source=ghost", b""),
            &registry,
            &metrics,
            &limits,
        );
        assert_eq!(response.status, 404);
    }
}
