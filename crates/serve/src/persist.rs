//! Registry durability: an append-only WAL of `PUT /schemas/{name}` bodies
//! plus periodic compacted snapshots, replayed on boot.
//!
//! Two files live in the data directory:
//!
//! - `registry.wal` — every accepted PUT appended as one record, flushed
//!   before the response is sent.
//! - `registry.snap` — a compacted image of the whole registry (one record
//!   per live schema, last-writer-wins applied), written atomically via a
//!   temp file + rename whenever the WAL payload exceeds the configured
//!   threshold; the WAL is truncated back to its header afterwards.
//!
//! Both files share a versioned 8-byte magic header ([`WAL_MAGIC`] /
//! [`SNAP_MAGIC`]) followed by records of the form
//!
//! ```text
//! [u32le name_len][u32le body_len][u32le crc32(name ++ body)][name][body]
//! ```
//!
//! A `DELETE /schemas/{name}` appends a *tombstone*: the same frame with
//! the sentinel `body_len == u32::MAX`, zero body bytes, and the CRC taken
//! over the name alone. Old logs (which cannot contain the sentinel — a
//! 4 GiB body would be rejected long before the WAL) replay unchanged, so
//! no magic bump is needed. Replay applies a tombstone by removing the
//! name from the image; compaction snapshots only live schemas, so
//! tombstones never outlive the log segment they were written to.
//!
//! Replay applies the snapshot first, then the WAL on top (later records
//! win). A torn tail — a record cut short by `SIGKILL`/power loss, or one
//! whose CRC disagrees — ends replay at the last good record, and the WAL
//! is truncated back to that offset so subsequent appends extend a clean
//! log instead of a corrupt one. Everything before the torn record is
//! recovered.
//!
//! Appends are durable before the response is sent: each record is
//! `fdatasync`'d by default, or — with a group-commit window configured
//! via `--fsync-batch-ms` — at most once per window, trading a bounded
//! tail of un-synced records for one syscall per burst.
//!
//! Consistency with the in-memory registry relies on an ordering contract
//! (see `handlers::put_schema`): a schema is registered in memory *before*
//! its WAL append, and [`Persist::compact`] takes the registry dump inside
//! the WAL lock — so every record a compaction truncates away is already
//! covered by the snapshot it wrote.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Versioned magic opening `registry.wal` (bump the trailing byte on
/// format changes).
pub const WAL_MAGIC: &[u8; 8] = b"QMWAL\0\0\x01";
/// Versioned magic opening `registry.snap`.
pub const SNAP_MAGIC: &[u8; 8] = b"QMSNP\0\0\x01";

/// WAL file name inside the data directory.
const WAL_FILE: &str = "registry.wal";
/// Snapshot file name inside the data directory.
const SNAP_FILE: &str = "registry.snap";

/// The `body_len` sentinel marking a tombstone (deletion) record. No real
/// body can reach this length — ingest limits cap bodies far below 4 GiB.
const TOMBSTONE_LEN: u32 = u32::MAX;

/// Hand-rolled CRC-32 (IEEE 802.3, reflected), table built at first use —
/// the stdlib ships no checksum and the container has no crates.
fn crc32(chunks: &[&[u8]]) -> u32 {
    fn table() -> &'static [u32; 256] {
        use std::sync::OnceLock;
        static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
        TABLE.get_or_init(|| {
            let mut table = [0u32; 256];
            for (i, slot) in table.iter_mut().enumerate() {
                let mut c = i as u32;
                for _ in 0..8 {
                    c = if c & 1 != 0 {
                        0xEDB8_8320 ^ (c >> 1)
                    } else {
                        c >> 1
                    };
                }
                *slot = c;
            }
            table
        })
    }
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for chunk in chunks {
        for &b in *chunk {
            crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
        }
    }
    !crc
}

/// One record serialized to `[len][len][crc][name][body]`.
fn encode_record(name: &str, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + name.len() + body.len());
    out.extend_from_slice(&(name.len() as u32).to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&[name.as_bytes(), body]).to_le_bytes());
    out.extend_from_slice(name.as_bytes());
    out.extend_from_slice(body);
    out
}

/// A tombstone for `name`: the sentinel `body_len`, no body bytes, CRC
/// over the name alone.
fn encode_tombstone(name: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + name.len());
    out.extend_from_slice(&(name.len() as u32).to_le_bytes());
    out.extend_from_slice(&TOMBSTONE_LEN.to_le_bytes());
    out.extend_from_slice(&crc32(&[name.as_bytes()]).to_le_bytes());
    out.extend_from_slice(name.as_bytes());
    out
}

/// One decoded record: a `Some` body is an upsert, `None` a tombstone.
type DecodedRecord = (String, Option<Vec<u8>>);

/// Decodes records from `bytes` (already past the magic), stopping at the
/// first incomplete or corrupt record. Returns the decoded records and
/// the offset (relative to `bytes`) of the first byte *not* consumed by a
/// good record — the truncation point for a torn tail.
fn decode_records(bytes: &[u8]) -> (Vec<DecodedRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= 12 {
        let name_len =
            u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let raw_body_len = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(bytes[pos + 8..pos + 12].try_into().expect("4 bytes"));
        let tombstone = raw_body_len == TOMBSTONE_LEN;
        let body_len = if tombstone { 0 } else { raw_body_len as usize };
        let data_start = pos + 12;
        let Some(data_end) = data_start.checked_add(name_len + body_len) else {
            break;
        };
        if data_end > bytes.len() {
            break; // torn tail: record cut short
        }
        let name_bytes = &bytes[data_start..data_start + name_len];
        let body = &bytes[data_start + name_len..data_end];
        if crc32(&[name_bytes, body]) != crc {
            break; // corrupt record: stop trusting the log here
        }
        let Ok(name) = std::str::from_utf8(name_bytes) else {
            break;
        };
        records.push((name.to_owned(), (!tombstone).then(|| body.to_vec())));
        pos = data_end;
    }
    (records, pos)
}

/// What [`Persist::open`] recovered from disk.
#[derive(Debug, Default)]
pub struct Replayed {
    /// The surviving registry image (snapshot + WAL applied in order,
    /// later records winning), sorted by name.
    pub schemas: Vec<(String, Vec<u8>)>,
    /// Records recovered from the WAL (after the snapshot).
    pub wal_records: usize,
    /// Whether a torn WAL tail was detected and truncated away.
    pub truncated_tail: bool,
}

/// Live-bytes bookkeeping for the current WAL segment: which payload
/// bytes replay would actually keep, versus garbage a compaction would
/// discard (superseded upserts plus tombstones).
#[derive(Debug, Default)]
struct Ledger {
    /// Per-name byte length of the *latest upsert record* in the current
    /// WAL segment, for names not since tombstoned.
    live: std::collections::HashMap<String, u64>,
    /// Sum of `live` values, kept incrementally.
    live_bytes: u64,
}

impl Ledger {
    /// Applies one appended/replayed record of `len` bytes. An upsert
    /// supersedes any earlier record for the name; a tombstone
    /// (`upsert == false`) turns the name's bytes — and its own — into
    /// garbage.
    fn account(&mut self, name: &str, len: u64, upsert: bool) {
        if upsert {
            if let Some(old) = self.live.insert(name.to_owned(), len) {
                self.live_bytes -= old;
            }
            self.live_bytes += len;
        } else if let Some(old) = self.live.remove(name) {
            self.live_bytes -= old;
        }
    }
}

struct Inner {
    wal: File,
    /// Payload bytes currently in the WAL (excluding the magic header).
    wal_payload: u64,
    /// Which of those payload bytes are still live (see [`Ledger`]).
    ledger: Ledger,
    /// When the WAL was last fsync'd (group-commit bookkeeping).
    last_sync: Instant,
    /// Whether bytes have been written since `last_sync`.
    dirty: bool,
}

/// The durability engine: one WAL handle plus the compaction threshold.
/// All file mutation happens under one mutex — appends are small
/// sequential writes, and PUTs are already serialized per schema name by
/// shard ownership, so the lock is not a hot path.
pub struct Persist {
    dir: PathBuf,
    inner: Mutex<Inner>,
    compact_threshold: u64,
    /// Group-commit window: zero fsyncs every append; a positive window
    /// fsyncs at most once per window (plus on compaction and drop).
    fsync_batch: Duration,
}

impl std::fmt::Debug for Persist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Persist").field("dir", &self.dir).finish()
    }
}

impl Persist {
    /// Opens (creating if needed) the data directory, replays snapshot +
    /// WAL, truncates any torn WAL tail, and returns the engine plus the
    /// recovered registry image. `compact_threshold` is the WAL payload
    /// size (bytes) beyond which [`Persist::needs_compaction`] fires.
    /// Every append is fsync'd; see [`Persist::open_with`] for group
    /// commit.
    pub fn open(dir: &Path, compact_threshold: u64) -> std::io::Result<(Persist, Replayed)> {
        Persist::open_with(dir, compact_threshold, Duration::ZERO)
    }

    /// [`Persist::open`] with a group-commit window: a zero `fsync_batch`
    /// fsyncs every append before it returns; a positive window fsyncs at
    /// most once per window, so a crash can lose up to one window of
    /// acknowledged writes in exchange for one `fdatasync` per burst.
    pub fn open_with(
        dir: &Path,
        compact_threshold: u64,
        fsync_batch: Duration,
    ) -> std::io::Result<(Persist, Replayed)> {
        std::fs::create_dir_all(dir)?;
        let mut replayed = Replayed::default();
        let mut image: std::collections::BTreeMap<String, Vec<u8>> = Default::default();
        // Snapshot first: it is written atomically (temp + rename), so a
        // bad magic means "not ours"/empty, not a torn write.
        if let Ok(bytes) = std::fs::read(dir.join(SNAP_FILE)) {
            if bytes.len() >= 8 && &bytes[..8] == SNAP_MAGIC {
                let (records, _) = decode_records(&bytes[8..]);
                for (name, body) in records {
                    match body {
                        Some(body) => image.insert(name, body),
                        None => image.remove(&name),
                    };
                }
            }
        }
        // Then the WAL on top; a torn tail is truncated back to the last
        // good record so future appends extend a clean log.
        let wal_path = dir.join(WAL_FILE);
        let mut wal_payload = 0u64;
        let mut ledger = Ledger::default();
        match std::fs::read(&wal_path) {
            Ok(bytes) if bytes.len() >= 8 && &bytes[..8] == WAL_MAGIC => {
                let (records, good_end) = decode_records(&bytes[8..]);
                replayed.wal_records = records.len();
                for (name, body) in records {
                    // Reconstruct the record's on-disk length so the
                    // live-bytes ledger survives restarts (an upsert is
                    // `12 + name + body`, a tombstone `12 + name`).
                    let len = 12 + name.len() as u64 + body.as_ref().map_or(0, |b| b.len() as u64);
                    ledger.account(&name, len, body.is_some());
                    match body {
                        Some(body) => image.insert(name, body),
                        None => image.remove(&name),
                    };
                }
                if 8 + good_end < bytes.len() {
                    replayed.truncated_tail = true;
                    let f = OpenOptions::new().write(true).open(&wal_path)?;
                    f.set_len(8 + good_end as u64)?;
                    f.sync_all()?;
                }
                wal_payload = good_end as u64;
            }
            Ok(_) | Err(_) => {
                // Missing, empty, or foreign file: start a fresh WAL.
                let mut f = File::create(&wal_path)?;
                f.write_all(WAL_MAGIC)?;
                f.sync_all()?;
            }
        }
        let mut wal = OpenOptions::new().append(true).open(&wal_path)?;
        wal.seek(SeekFrom::End(0))?;
        replayed.schemas = image.into_iter().collect();
        Ok((
            Persist {
                dir: dir.to_path_buf(),
                inner: Mutex::new(Inner {
                    wal,
                    wal_payload,
                    ledger,
                    last_sync: Instant::now(),
                    dirty: false,
                }),
                compact_threshold: compact_threshold.max(1),
                fsync_batch,
            },
            replayed,
        ))
    }

    /// The data directory this engine writes to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one accepted PUT to the WAL and syncs it per the
    /// group-commit policy. Returns the bytes appended (for the
    /// `wal_bytes_total` counter).
    pub fn append(&self, name: &str, body: &[u8]) -> std::io::Result<u64> {
        self.append_raw(name, true, encode_record(name, body))
    }

    /// Appends one accepted DELETE as a tombstone record.
    pub fn append_tombstone(&self, name: &str) -> std::io::Result<u64> {
        self.append_raw(name, false, encode_tombstone(name))
    }

    fn append_raw(&self, name: &str, upsert: bool, record: Vec<u8>) -> std::io::Result<u64> {
        let mut inner = self.inner.lock().expect("wal lock");
        inner.wal.write_all(&record)?;
        inner.dirty = true;
        // Group commit: with a zero window every append is durable before
        // the response; with a positive one, at most one fdatasync per
        // window covers every record written inside it.
        if self.fsync_batch.is_zero() || inner.last_sync.elapsed() >= self.fsync_batch {
            inner.wal.sync_data()?;
            inner.last_sync = Instant::now();
            inner.dirty = false;
        }
        inner.wal_payload += record.len() as u64;
        inner.ledger.account(name, record.len() as u64, upsert);
        Ok(record.len() as u64)
    }

    /// Forces any group-commit-deferred WAL bytes to disk (shutdown path).
    pub fn sync(&self) -> std::io::Result<()> {
        let mut inner = self.inner.lock().expect("wal lock");
        if inner.dirty {
            inner.wal.sync_data()?;
            inner.last_sync = Instant::now();
            inner.dirty = false;
        }
        Ok(())
    }

    /// Whether the WAL payload has outgrown the compaction threshold.
    pub fn needs_compaction(&self) -> bool {
        self.inner.lock().expect("wal lock").wal_payload >= self.compact_threshold
    }

    /// Writes a compacted snapshot and truncates the WAL back to its
    /// header. `dump` is called *inside* the WAL lock so the snapshot is
    /// guaranteed to cover every record the truncation discards (see the
    /// module docs for the ordering argument).
    pub fn compact<F>(&self, dump: F) -> std::io::Result<()>
    where
        F: FnOnce() -> Vec<(String, Arc<[u8]>)>,
    {
        let mut inner = self.inner.lock().expect("wal lock");
        let entries = dump();
        let tmp_path = self.dir.join("registry.snap.tmp");
        {
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(SNAP_MAGIC)?;
            for (name, body) in &entries {
                tmp.write_all(&encode_record(name, body))?;
            }
            tmp.sync_all()?;
        }
        std::fs::rename(&tmp_path, self.dir.join(SNAP_FILE))?;
        // The snapshot is durable; the WAL records it covers can go —
        // including any group-commit-deferred bytes, which the snapshot
        // (taken from the in-memory registry) already covers.
        inner.wal.set_len(8)?;
        inner.wal.seek(SeekFrom::End(0))?;
        inner.wal.sync_all()?;
        inner.wal_payload = 0;
        inner.ledger = Ledger::default();
        inner.last_sync = Instant::now();
        inner.dirty = false;
        Ok(())
    }

    /// Current WAL payload bytes (records only, header excluded).
    pub fn wal_payload(&self) -> u64 {
        self.inner.lock().expect("wal lock").wal_payload
    }

    /// Fraction of the WAL payload that replay would keep: bytes of each
    /// name's latest upsert, for names not since tombstoned, over the
    /// total payload. `1.0` for an empty (freshly compacted) WAL; low
    /// values mean the log is mostly superseded upserts and tombstones —
    /// garbage the next compaction will discard.
    pub fn wal_live_fraction(&self) -> f64 {
        let inner = self.inner.lock().expect("wal lock");
        if inner.wal_payload == 0 {
            1.0
        } else {
            inner.ledger.live_bytes as f64 / inner.wal_payload as f64
        }
    }
}

impl Drop for Persist {
    fn drop(&mut self) {
        // Best effort: flush any group-commit tail so a clean shutdown
        // never loses acknowledged writes.
        let _ = self.sync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "qmatch-persist-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE check value for "123456789".
        assert_eq!(crc32(&[b"123456789"]), 0xCBF4_3926);
        assert_eq!(
            crc32(&[b"1234", b"56789"]),
            0xCBF4_3926,
            "chunking is transparent"
        );
        assert_eq!(crc32(&[b""]), 0);
    }

    #[test]
    fn append_replay_round_trip() {
        let dir = tempdir("roundtrip");
        {
            let (p, replayed) = Persist::open(&dir, 1 << 20).unwrap();
            assert!(replayed.schemas.is_empty());
            p.append("a", b"<alpha/>").unwrap();
            p.append("b", b"<beta/>").unwrap();
            p.append("a", b"<alpha v2/>").unwrap(); // replacement: later wins
        }
        let (_, replayed) = Persist::open(&dir, 1 << 20).unwrap();
        assert_eq!(replayed.wal_records, 3);
        assert!(!replayed.truncated_tail);
        assert_eq!(
            replayed.schemas,
            vec![
                ("a".to_owned(), b"<alpha v2/>".to_vec()),
                ("b".to_owned(), b"<beta/>".to_vec()),
            ]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_later_appends_survive() {
        let dir = tempdir("torn");
        {
            let (p, _) = Persist::open(&dir, 1 << 20).unwrap();
            p.append("keep", b"<kept/>").unwrap();
            p.append("lost", b"<torn-away/>").unwrap();
        }
        // Cut the final record short, as a crash mid-write would.
        let wal = dir.join(WAL_FILE);
        let len = std::fs::metadata(&wal).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&wal)
            .unwrap()
            .set_len(len - 5)
            .unwrap();
        let (p, replayed) = Persist::open(&dir, 1 << 20).unwrap();
        assert!(replayed.truncated_tail);
        assert_eq!(
            replayed.schemas,
            vec![("keep".to_owned(), b"<kept/>".to_vec())]
        );
        // The log is clean again: appends after recovery replay fine.
        p.append("after", b"<recovered/>").unwrap();
        drop(p);
        let (_, replayed) = Persist::open(&dir, 1 << 20).unwrap();
        assert_eq!(
            replayed
                .schemas
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            ["after", "keep"]
        );
        assert!(!replayed.truncated_tail);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tombstones_delete_on_replay_and_reput_revives() {
        let dir = tempdir("tombstone");
        {
            let (p, _) = Persist::open(&dir, 1 << 20).unwrap();
            p.append("a", b"<alpha/>").unwrap();
            p.append("b", b"<beta/>").unwrap();
            let bytes = p.append_tombstone("a").unwrap();
            // name_len + body_len sentinel + crc + "a"
            assert_eq!(bytes, 13);
        }
        let (p, replayed) = Persist::open(&dir, 1 << 20).unwrap();
        assert_eq!(replayed.wal_records, 3, "the tombstone is a record");
        assert!(!replayed.truncated_tail, "tombstone crc must verify");
        assert_eq!(
            replayed.schemas,
            vec![("b".to_owned(), b"<beta/>".to_vec())],
            "the tombstone removed \"a\" from the live image"
        );
        // Delete → re-put replays in order: the re-put wins.
        p.append("a", b"<alpha v2/>").unwrap();
        drop(p);
        let (_, replayed) = Persist::open(&dir, 1 << 20).unwrap();
        assert_eq!(
            replayed.schemas,
            vec![
                ("a".to_owned(), b"<alpha v2/>".to_vec()),
                ("b".to_owned(), b"<beta/>".to_vec()),
            ]
        );
        // Tombstoning a name that was never logged is harmless on replay.
        let (p, _) = Persist::open(&dir, 1 << 20).unwrap();
        p.append_tombstone("ghost").unwrap();
        drop(p);
        let (_, replayed) = Persist::open(&dir, 1 << 20).unwrap();
        assert_eq!(replayed.schemas.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_defers_fsync_and_sync_flushes_the_tail() {
        let dir = tempdir("group-commit");
        {
            let (p, _) = Persist::open_with(&dir, 1 << 20, Duration::from_secs(3600)).unwrap();
            // Both records land in the file (write_all), but only the
            // window-expiry path would sync them; sync() forces it.
            p.append("a", b"<alpha/>").unwrap();
            p.append_tombstone("a").unwrap();
            p.sync().unwrap();
            p.append("b", b"<beta/>").unwrap();
            // Dropped dirty: Drop syncs the tail.
        }
        let (_, replayed) = Persist::open_with(&dir, 1 << 20, Duration::ZERO).unwrap();
        assert_eq!(replayed.wal_records, 3);
        assert_eq!(
            replayed.schemas,
            vec![("b".to_owned(), b"<beta/>".to_vec())]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_crc_stops_replay_at_the_bad_record() {
        let dir = tempdir("crc");
        {
            let (p, _) = Persist::open(&dir, 1 << 20).unwrap();
            p.append("good", b"<ok/>").unwrap();
            p.append("bad", b"<flipped/>").unwrap();
        }
        let wal = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&wal).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF; // flip a body byte: CRC now disagrees
        std::fs::write(&wal, &bytes).unwrap();
        let (_, replayed) = Persist::open(&dir, 1 << 20).unwrap();
        assert!(replayed.truncated_tail);
        assert_eq!(
            replayed.schemas,
            vec![("good".to_owned(), b"<ok/>".to_vec())]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_moves_the_wal_into_the_snapshot() {
        let dir = tempdir("compact");
        {
            let (p, _) = Persist::open(&dir, 1).unwrap(); // threshold 1: always due
            p.append("a", b"<alpha/>").unwrap();
            assert!(p.needs_compaction());
            p.compact(|| vec![("a".to_owned(), Arc::from(b"<alpha/>".as_slice()))])
                .unwrap();
            assert_eq!(p.wal_payload(), 0);
            assert!(!p.needs_compaction() || p.compact_threshold == 1);
            // Post-compaction appends land in the fresh WAL.
            p.append("b", b"<beta/>").unwrap();
        }
        let (_, replayed) = Persist::open(&dir, 1).unwrap();
        assert_eq!(replayed.wal_records, 1, "only b is in the WAL");
        assert_eq!(
            replayed
                .schemas
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            ["a", "b"],
            "a comes from the snapshot, b from the WAL"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_fraction_tracks_supersession_tombstones_and_compaction() {
        let dir = tempdir("live-fraction");
        let (p, _) = Persist::open(&dir, 1 << 20).unwrap();
        assert_eq!(p.wal_live_fraction(), 1.0, "empty WAL is all live");
        let first = p.append("a", b"<alpha/>").unwrap();
        assert_eq!(p.wal_live_fraction(), 1.0, "one upsert is all live");
        let second = p.append("a", b"<alpha version two/>").unwrap();
        let expected = second as f64 / (first + second) as f64;
        assert!(
            (p.wal_live_fraction() - expected).abs() < 1e-12,
            "a superseded upsert is garbage: {} vs {expected}",
            p.wal_live_fraction()
        );
        let tomb = p.append_tombstone("a").unwrap();
        assert_eq!(
            p.wal_live_fraction(),
            0.0,
            "a tombstoned name leaves only garbage"
        );
        // The ledger is rebuilt from the log on restart.
        drop(p);
        let (p, _) = Persist::open(&dir, 1 << 20).unwrap();
        assert_eq!(p.wal_payload(), first + second + tomb);
        assert_eq!(p.wal_live_fraction(), 0.0, "replay rebuilds the ledger");
        let third = p.append("b", b"<beta/>").unwrap();
        let expected = third as f64 / (first + second + tomb + third) as f64;
        assert!((p.wal_live_fraction() - expected).abs() < 1e-12);
        // Compaction empties the WAL: everything left is live by definition.
        p.compact(|| vec![("b".to_owned(), Arc::from(b"<beta/>".as_slice()))])
            .unwrap();
        assert_eq!(p.wal_live_fraction(), 1.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_or_empty_files_start_fresh() {
        let dir = tempdir("foreign");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(WAL_FILE), b"not a wal at all").unwrap();
        std::fs::write(dir.join(SNAP_FILE), b"junk").unwrap();
        let (p, replayed) = Persist::open(&dir, 1 << 20).unwrap();
        assert!(replayed.schemas.is_empty());
        p.append("x", b"<x/>").unwrap();
        drop(p);
        let (_, replayed) = Persist::open(&dir, 1 << 20).unwrap();
        assert_eq!(replayed.schemas.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
