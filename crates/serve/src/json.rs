//! A minimal JSON writer (no parser, no dependencies).
//!
//! The server only ever *emits* JSON — request inputs arrive as URL paths,
//! query parameters, and raw XSD bodies — so this module is a writer and an
//! escaper, nothing more. Values are built as a [`Json`] tree and rendered
//! with [`Json::render`]; float formatting goes through [`fmt_f64`] so that
//! integration tests can reproduce the server's number rendering
//! bit-for-bit when asserting parity with library results.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (counters, sizes, node counts).
    UInt(u64),
    /// A float, rendered with [`fmt_f64`].
    Num(f64),
    /// A string, escaped on render.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved as inserted.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An empty object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a field to an object (panics if `self` is not an object —
    /// a programming error, not an input error).
    pub fn field(mut self, key: &str, value: Json) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_owned(), value)),
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    /// Renders the value as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(x) => out.push_str(&fmt_f64(*x)),
            Json::Str(s) => escape_into(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Renders a float exactly as the server does: Rust's shortest
/// round-trippable decimal form (`{}`), with non-finite values mapped to
/// `null` (JSON has no NaN/Infinity). Exported so tests asserting
/// bit-identity with library outcomes can format their expectation the
/// same way.
pub fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}

/// Appends `s` as a quoted, escaped JSON string.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values_compactly() {
        let value = Json::obj()
            .field("name", Json::str("po1"))
            .field("nodes", Json::UInt(10))
            .field("qom", Json::Num(0.5))
            .field("tags", Json::Arr(vec![Json::Bool(true), Json::Null]));
        assert_eq!(
            value.render(),
            r#"{"name":"po1","nodes":10,"qom":0.5,"tags":[true,null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::str("a\"b\\c\nd\te").render(), r#""a\"b\\c\nd\te""#);
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
        assert_eq!(Json::str("schäma/路径").render(), "\"schäma/路径\"");
    }

    #[test]
    fn float_formatting_is_shortest_roundtrip() {
        assert_eq!(fmt_f64(0.30000000000000004), "0.30000000000000004");
        assert_eq!(fmt_f64(1.0), "1");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        // Round-trip: the rendered text parses back to the same bits.
        let x = 0.123_456_789_012_345_68_f64;
        assert_eq!(fmt_f64(x).parse::<f64>().unwrap().to_bits(), x.to_bits());
    }
}
