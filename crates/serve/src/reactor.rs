//! The epoll readiness loop: one reactor thread owning every socket.
//!
//! All sockets are nonblocking and registered with a single `epoll`
//! instance (raw `libc` FFI — no bindings crate). The reactor accepts,
//! reads request bytes into per-connection buffers, and advances each
//! connection's parse state machine (`Conn::step`): head bytes
//! accumulate until the blank line, then `Content-Length` body bytes,
//! then the parsed request is dispatched per
//! [`handlers::disposition`] — inline on the reactor for cheap endpoints,
//! or enqueued to the owner shard's worker ([`crate::shard::run_worker`])
//! with backpressure (`429` + `Retry-After` once `queue_depth` jobs are
//! outstanding) and a per-request deadline budget. Workers hand finished
//! responses back over a completion channel and kick [`WakeFd`] (an
//! `eventfd`) so a parked `epoll_wait` returns immediately.
//!
//! Every connection carries a deadline: accept→first-byte (`idle`),
//! first-byte→complete head (`header`), head→complete body (`body`), and
//! between keep-alive requests (`idle` again). A sweep on every loop tick
//! closes violators — a slow-loris client holding a half-written head
//! gets a best-effort `408` and its socket closed, without ever occupying
//! a shard worker.

use crate::handlers::{self, Disposition, ServeState};
use crate::http::{self, Request, Response};
use crate::metrics::Endpoint;
use crate::shard::{fnv1a, Completion, Job, JobCtx, Scatter};
use qmatch_core::trace::{Phase, Span};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Raw Linux syscall surface: exactly the six calls the reactor needs.
mod sys {
    use std::os::raw::{c_int, c_uint, c_void};

    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLL_CLOEXEC: c_int = 0x80000;
    pub const EFD_NONBLOCK: c_int = 0x800;
    pub const EFD_CLOEXEC: c_int = 0x80000;

    /// Mirrors `struct epoll_event`; packed on x86_64 per the kernel ABI.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }
}

use sys::EpollEvent;

fn last_err() -> std::io::Error {
    std::io::Error::last_os_error()
}

/// A thin owner of one `epoll` instance.
struct Poller {
    epfd: RawFd,
}

impl Poller {
    fn new() -> std::io::Result<Poller> {
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(last_err());
        }
        Ok(Poller { epfd })
    }

    fn ctl(
        &self,
        op: std::os::raw::c_int,
        fd: RawFd,
        events: u32,
        token: u64,
    ) -> std::io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        if unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) } < 0 {
            return Err(last_err());
        }
        Ok(())
    }

    fn add(&self, fd: RawFd, events: u32, token: u64) -> std::io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, events, token)
    }

    fn modify(&self, fd: RawFd, events: u32, token: u64) -> std::io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, events, token)
    }

    fn remove(&self, fd: RawFd) -> std::io::Result<()> {
        // The event argument is ignored for DEL but must be non-null on
        // pre-2.6.9 kernels; pass one unconditionally.
        self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits up to `timeout_ms` and fills `events`; a signal interrupting
    /// the wait reports zero events (the caller's loop re-enters).
    fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> std::io::Result<usize> {
        let n = unsafe {
            sys::epoll_wait(
                self.epfd,
                events.as_mut_ptr(),
                events.len() as std::os::raw::c_int,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = last_err();
            if err.kind() == ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe { sys::close(self.epfd) };
    }
}

/// An `eventfd` that lets shard workers kick a parked `epoll_wait`.
#[derive(Debug)]
pub struct WakeFd {
    fd: RawFd,
}

impl WakeFd {
    /// A fresh nonblocking eventfd.
    pub fn new() -> std::io::Result<WakeFd> {
        let fd = unsafe { sys::eventfd(0, sys::EFD_NONBLOCK | sys::EFD_CLOEXEC) };
        if fd < 0 {
            return Err(last_err());
        }
        Ok(WakeFd { fd })
    }

    /// The raw fd (for epoll registration).
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Signals the reactor. Saturating the eventfd counter means a wake is
    /// already pending, which is all that matters — errors are ignored.
    pub fn wake(&self) {
        let one: u64 = 1;
        unsafe {
            sys::write(
                self.fd,
                (&one as *const u64).cast(),
                std::mem::size_of::<u64>(),
            )
        };
    }

    /// Consumes all pending wake signals.
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        loop {
            let n = unsafe {
                sys::read(
                    self.fd,
                    (&mut buf as *mut u64).cast(),
                    std::mem::size_of::<u64>(),
                )
            };
            if n <= 0 {
                break;
            }
        }
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        unsafe { sys::close(self.fd) };
    }
}

/// The reactor's timeout and admission knobs (all come from
/// `ServerConfig`).
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// First byte → complete request head.
    pub header: Duration,
    /// Complete head → complete body.
    pub body: Duration,
    /// Accept → first byte, and between keep-alive requests.
    pub idle: Duration,
    /// Parsed request → response (jobs expired in the queue answer `503`).
    pub request: Duration,
    /// Max queued-or-executing shard jobs before new ones answer `429`.
    pub queue_depth: usize,
}

/// How far one `Conn::step` got.
enum Step {
    /// Need more bytes (or mid-request); nothing to do.
    Wait,
    /// A complete request was parsed.
    Request(Box<Request>),
    /// The head failed to parse; answer 400 and close.
    BadRequest(&'static str),
    /// The declared body exceeds the ingest limit; answer 413 and close
    /// without draining the body (the old worker-pool server's behavior).
    TooLarge {
        /// The configured `max_input_bytes`.
        limit: u64,
        /// The declared `Content-Length`.
        actual: u64,
    },
}

/// Parse progress of the connection's current request.
enum Reading {
    /// Between requests; the next byte starts a head.
    Idle,
    /// Accumulating head bytes until `\r\n\r\n`.
    Head,
    /// Head parsed; waiting for `need` body bytes.
    Body { head: http::Head, need: usize },
}

/// One client connection's sockets, buffers, and state machine.
struct Conn {
    stream: TcpStream,
    /// Received, not-yet-consumed bytes.
    buf: Vec<u8>,
    /// Rendered, not-yet-written response bytes.
    out: Vec<u8>,
    out_pos: usize,
    reading: Reading,
    /// A dispatched request is awaiting its completion; parsing pauses.
    in_flight: bool,
    /// Keep-alive disposition of the in-flight request.
    req_keep_alive: bool,
    close_after_write: bool,
    /// Registered epoll interest includes `EPOLLOUT`.
    want_write: bool,
    deadline: Instant,
}

impl Conn {
    fn new(stream: TcpStream, idle: Duration) -> Conn {
        Conn {
            stream,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            reading: Reading::Idle,
            in_flight: false,
            req_keep_alive: false,
            close_after_write: false,
            want_write: false,
            deadline: Instant::now() + idle,
        }
    }

    fn out_pending(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// Advances the parse state machine by one transition.
    fn step(&mut self, timing: &Timing, max_input_bytes: usize) -> Step {
        match &self.reading {
            Reading::Idle => {
                if self.buf.is_empty() {
                    return Step::Wait;
                }
                self.reading = Reading::Head;
                self.deadline = Instant::now() + timing.header;
                self.step(timing, max_input_bytes)
            }
            Reading::Head => {
                let Some(end) = http::find_head_end(&self.buf) else {
                    if self.buf.len() > http::MAX_HEAD_BYTES {
                        return Step::BadRequest("request head too large");
                    }
                    return Step::Wait;
                };
                let Ok(text) = std::str::from_utf8(&self.buf[..end]) else {
                    return Step::BadRequest("request head is not UTF-8");
                };
                let head = match http::parse_head(text) {
                    Ok(head) => head,
                    Err(detail) => return Step::BadRequest(detail),
                };
                self.buf.drain(..end + 4);
                let need = head.content_length.unwrap_or(0);
                if need > max_input_bytes {
                    return Step::TooLarge {
                        limit: max_input_bytes as u64,
                        actual: need as u64,
                    };
                }
                // An Expect: 100-continue client holds the body until the
                // interim response; answer before waiting for body bytes.
                if need > 0
                    && head
                        .headers
                        .iter()
                        .any(|(k, v)| k == "expect" && v.eq_ignore_ascii_case("100-continue"))
                {
                    self.out.extend_from_slice(b"HTTP/1.1 100 Continue\r\n\r\n");
                }
                self.reading = Reading::Body { head, need };
                self.deadline = Instant::now() + timing.body;
                self.step(timing, max_input_bytes)
            }
            Reading::Body { need, .. } => {
                let need = *need;
                if self.buf.len() < need {
                    return Step::Wait;
                }
                let body: Vec<u8> = self.buf.drain(..need).collect();
                let Reading::Body { head, .. } =
                    std::mem::replace(&mut self.reading, Reading::Idle)
                else {
                    unreachable!("matched Body above");
                };
                self.deadline = Instant::now() + timing.idle;
                Step::Request(Box::new(Request {
                    method: head.method,
                    path: head.path,
                    query: head.query,
                    headers: head.headers,
                    body,
                    keep_alive: head.keep_alive,
                }))
            }
        }
    }
}

/// Epoll token namespace: connections use a monotone counter (never a raw
/// fd — fds are reused by the kernel, and a stale completion must not be
/// deliverable to a different, newer connection).
const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKE: u64 = u64::MAX - 1;

/// How long a parked `epoll_wait` sleeps between deadline sweeps.
const TICK_MS: i32 = 100;
/// Grace period for draining in-flight work after shutdown is requested.
const DRAIN_LIMIT: Duration = Duration::from_secs(5);

/// Runs the reactor until shutdown (handle or signal) and all dispatched
/// work has drained.
pub fn run(
    listener: TcpListener,
    state: Arc<ServeState>,
    senders: Vec<Sender<Job>>,
    completions: Receiver<Completion>,
    wake: Arc<WakeFd>,
    shutdown: Arc<AtomicBool>,
    timing: Timing,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let poller = Poller::new()?;
    poller.add(listener.as_raw_fd(), sys::EPOLLIN, TOKEN_LISTENER)?;
    poller.add(wake.fd(), sys::EPOLLIN, TOKEN_WAKE)?;
    let mut reactor = Reactor {
        poller,
        listener,
        state,
        senders,
        completions,
        wake,
        shutdown,
        timing,
        conns: HashMap::new(),
        next_token: 0,
        outstanding: 0,
        draining: false,
        drain_since: Instant::now(),
    };
    reactor.run()
}

struct Reactor {
    poller: Poller,
    listener: TcpListener,
    state: Arc<ServeState>,
    /// One job channel per shard, index-aligned with the registry.
    senders: Vec<Sender<Job>>,
    completions: Receiver<Completion>,
    wake: Arc<WakeFd>,
    shutdown: Arc<AtomicBool>,
    timing: Timing,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// Requests dispatched to shards and not yet completed — the
    /// backpressure admission counter.
    outstanding: usize,
    draining: bool,
    drain_since: Instant,
}

impl Reactor {
    fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed) || crate::server::signal_received()
    }

    fn run(&mut self) -> std::io::Result<()> {
        let mut events = [EpollEvent { events: 0, data: 0 }; 256];
        loop {
            if self.stopping() {
                if !self.draining {
                    self.draining = true;
                    self.drain_since = Instant::now();
                    let _ = self.poller.remove(self.listener.as_raw_fd());
                }
                // Quiesced connections go first; in-flight ones finish.
                let idle: Vec<u64> = self
                    .conns
                    .iter()
                    .filter(|(_, c)| !c.in_flight && !c.out_pending())
                    .map(|(t, _)| *t)
                    .collect();
                for token in idle {
                    self.close_conn(token);
                }
                let drained = self.outstanding == 0 && self.conns.is_empty();
                if drained || self.drain_since.elapsed() > DRAIN_LIMIT {
                    return Ok(());
                }
            }
            let n = self.poller.wait(&mut events, TICK_MS)?;
            for ev in events.iter().take(n) {
                // Copy out of the (possibly packed) struct before use.
                let flags = ev.events;
                let token = ev.data;
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => self.wake.drain(),
                    _ => self.conn_ready(token, flags),
                }
            }
            self.drain_completions();
            self.sweep_deadlines();
        }
    }

    fn accept_ready(&mut self) {
        if self.draining {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .add(stream.as_raw_fd(), sys::EPOLLIN, token)
                        .is_err()
                    {
                        continue; // dropping the stream closes it
                    }
                    self.conns
                        .insert(token, Conn::new(stream, self.timing.idle));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    fn conn_ready(&mut self, token: u64, flags: u32) {
        if flags & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
            self.close_conn(token);
            return;
        }
        if flags & sys::EPOLLIN != 0 {
            let mut chunk = [0u8; 16 * 1024];
            let mut closed = false;
            {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                loop {
                    match conn.stream.read(&mut chunk) {
                        Ok(0) => {
                            closed = true;
                            break;
                        }
                        Ok(n) => conn.buf.extend_from_slice(&chunk[..n]),
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(_) => {
                            closed = true;
                            break;
                        }
                    }
                }
            }
            if closed {
                self.close_conn(token);
                return;
            }
            self.advance_conn(token);
        }
        if flags & sys::EPOLLOUT != 0 {
            self.flush_conn(token);
        }
    }

    /// Runs the parse state machine until it needs more bytes, dispatching
    /// every complete request (pipelined requests included, in order).
    fn advance_conn(&mut self, token: u64) {
        loop {
            let step = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                if conn.in_flight || conn.close_after_write {
                    break;
                }
                conn.step(&self.timing, self.state.limits.max_input_bytes)
            };
            match step {
                Step::Wait => break,
                Step::Request(req) => self.dispatch(token, *req),
                Step::BadRequest(detail) => {
                    let response = handlers::error(400, "bad_request", detail);
                    self.parse_reject(token, response);
                    break;
                }
                Step::TooLarge { limit, actual } => {
                    self.state.metrics.add_rejected_by_limits();
                    let response = handlers::error(
                        413,
                        "limit_exceeded",
                        format!(
                            "request body of {actual} bytes exceeds the \
                             max_input_bytes ingestion limit ({limit})"
                        ),
                    );
                    self.parse_reject(token, response);
                    break;
                }
            }
        }
        self.flush_conn(token);
    }

    /// Answers a wire-level parse failure: no `X-Request-Id` (there is no
    /// request to correlate), counted under `Endpoint::Other`, connection
    /// closed after the error is written.
    fn parse_reject(&mut self, token: u64, response: Response) {
        self.state
            .metrics
            .record(Endpoint::Other, response.status, 0);
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.out.extend_from_slice(&response.render(false));
        conn.close_after_write = true;
    }

    fn dispatch(&mut self, token: u64, req: Request) {
        let started = Instant::now();
        let request_id = req
            .header("x-request-id")
            .map(str::to_owned)
            .unwrap_or_else(|| self.state.metrics.next_request_id());
        // The numeric correlation id for trace spans: minted ids map back
        // to their counter value, client-supplied ids hash stably.
        let rid = request_id
            .strip_prefix("q-")
            .and_then(|n| n.parse::<u64>().ok())
            .unwrap_or_else(|| fnv1a(request_id.as_bytes()));
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.req_keep_alive = req.keep_alive;
        }
        let body_len = req.body.len() as u64;
        match handlers::disposition(&req, &self.state.registry) {
            Disposition::Inline => {
                let state = self.state.clone();
                let (endpoint, response) = handlers::handle(&req, &state);
                self.respond(
                    token,
                    endpoint,
                    response,
                    &request_id,
                    started,
                    rid,
                    body_len,
                );
            }
            Disposition::Shard { shard, endpoint } => {
                if self.reject_if_saturated(token, &req, endpoint, &request_id, started, rid) {
                    return;
                }
                let ctx = JobCtx {
                    token,
                    request_id,
                    rid,
                    started,
                    enqueued: Instant::now(),
                    deadline: started + self.timing.request,
                    body_len,
                };
                if self.senders[shard]
                    .send(Job::Exec {
                        req: Box::new(req),
                        ctx,
                        endpoint,
                    })
                    .is_ok()
                {
                    self.mark_in_flight(token);
                }
            }
            Disposition::Scatter => {
                let endpoint = Endpoint::MatchTopk;
                if self.reject_if_saturated(token, &req, endpoint, &request_id, started, rid) {
                    return;
                }
                // Validate on the reactor so a bad query never occupies the
                // match queue; the plan carries the source artifact.
                let plan = match handlers::validate_topk(&req, &self.state.registry) {
                    Ok(plan) => plan,
                    Err(response) => {
                        let response = handlers::finalize(&req.path, endpoint, response);
                        self.respond(
                            token,
                            endpoint,
                            response,
                            &request_id,
                            started,
                            rid,
                            body_len,
                        );
                        return;
                    }
                };
                let shards = self.senders.len();
                let scatter = Arc::new(Scatter {
                    plan,
                    ctx: JobCtx {
                        token,
                        request_id,
                        rid,
                        started,
                        enqueued: Instant::now(),
                        deadline: started + self.timing.request,
                        body_len,
                    },
                    remaining: AtomicUsize::new(shards),
                    expired: AtomicBool::new(false),
                    partials: Mutex::new(Vec::new()),
                });
                for sender in &self.senders {
                    let _ = sender.send(Job::Partial {
                        scatter: scatter.clone(),
                    });
                }
                self.mark_in_flight(token);
            }
        }
    }

    /// Sheds one request with `429` + `Retry-After` when `queue_depth`
    /// shard jobs are already outstanding. Returns true when shed.
    fn reject_if_saturated(
        &mut self,
        token: u64,
        req: &Request,
        endpoint: Endpoint,
        request_id: &str,
        started: Instant,
        rid: u64,
    ) -> bool {
        if self.outstanding < self.timing.queue_depth {
            return false;
        }
        self.state.metrics.add_rejected_backpressure();
        let response = handlers::error(
            429,
            "backpressure",
            "the match queue is full; retry shortly",
        )
        .with_header("retry-after", "1");
        let response = handlers::finalize(&req.path, endpoint, response);
        self.respond(
            token,
            endpoint,
            response,
            request_id,
            started,
            rid,
            req.body.len() as u64,
        );
        true
    }

    fn mark_in_flight(&mut self, token: u64) {
        self.outstanding += 1;
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.in_flight = true;
        }
    }

    /// Records the request and queues the rendered response. The request
    /// counters and the `X-Request-Id` header are appended here — exactly
    /// once per request, wherever the response was produced.
    #[allow(clippy::too_many_arguments)]
    fn respond(
        &mut self,
        token: u64,
        endpoint: Endpoint,
        response: Response,
        request_id: &str,
        started: Instant,
        rid: u64,
        body_len: u64,
    ) {
        let elapsed = started.elapsed();
        self.state
            .metrics
            .record(endpoint, response.status, elapsed.as_micros() as u64);
        self.state.metrics.record_phase(&Span {
            rows: 1,
            cells: body_len,
            wall: elapsed,
            request: rid,
            ..Span::empty(Phase::Request)
        });
        let response = response.with_header("x-request-id", request_id.to_owned());
        let stopping = self.stopping();
        let idle = self.timing.idle;
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let keep = conn.req_keep_alive && !stopping;
        conn.out.extend_from_slice(&response.render(keep));
        if !keep {
            conn.close_after_write = true;
        }
        conn.deadline = Instant::now() + idle;
    }

    /// Delivers finished shard work back to its connection.
    fn drain_completions(&mut self) {
        while let Ok(done) = self.completions.try_recv() {
            self.outstanding -= 1;
            let token = done.ctx.token;
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.in_flight = false;
            } else {
                continue; // connection died while its job ran
            }
            self.respond(
                token,
                done.endpoint,
                done.response,
                &done.ctx.request_id,
                done.ctx.started,
                done.ctx.rid,
                done.ctx.body_len,
            );
            // The client may have pipelined the next request already.
            self.advance_conn(token);
        }
    }

    /// Writes as much pending output as the socket accepts, updating the
    /// `EPOLLOUT` interest to match what is left.
    fn flush_conn(&mut self, token: u64) {
        let mut close = false;
        let mut rewire = None;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            while conn.out_pos < conn.out.len() {
                match conn.stream.write(&conn.out[conn.out_pos..]) {
                    Ok(0) => {
                        close = true;
                        break;
                    }
                    Ok(n) => conn.out_pos += n,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => {
                        close = true;
                        break;
                    }
                }
            }
            if !close && conn.out_pos == conn.out.len() {
                conn.out.clear();
                conn.out_pos = 0;
                if conn.close_after_write {
                    close = true;
                }
            }
            if !close {
                let want_write = conn.out_pending();
                if want_write != conn.want_write {
                    conn.want_write = want_write;
                    let events = sys::EPOLLIN | if want_write { sys::EPOLLOUT } else { 0 };
                    rewire = Some((conn.stream.as_raw_fd(), events));
                }
            }
        }
        if close {
            self.close_conn(token);
            return;
        }
        if let Some((fd, events)) = rewire {
            if self.poller.modify(fd, events, token).is_err() {
                self.close_conn(token);
            }
        }
    }

    /// Closes connections past their deadline. A connection mid-request
    /// (head or body partially received — the slow-loris shape) gets a
    /// best-effort `408` first; in-flight connections are exempt (their
    /// budget is the request deadline, enforced at the shard).
    fn sweep_deadlines(&mut self) {
        let now = Instant::now();
        let expired: Vec<(u64, bool)> = self
            .conns
            .iter()
            .filter(|(_, c)| !c.in_flight && now >= c.deadline)
            .map(|(t, c)| {
                (
                    *t,
                    matches!(c.reading, Reading::Head | Reading::Body { .. }),
                )
            })
            .collect();
        for (token, mid_request) in expired {
            if mid_request {
                self.state.metrics.record(Endpoint::Other, 408, 0);
                let wire = handlers::error(
                    408,
                    "request_timeout",
                    "closed while waiting for the rest of the request",
                )
                .render(false);
                // Best effort: the client may not be reading; the close is
                // the real enforcement.
                if let Some(conn) = self.conns.get_mut(&token) {
                    let _ = conn.stream.write(&wire);
                }
            }
            self.close_conn(token);
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.remove(conn.stream.as_raw_fd());
            // Dropping the stream closes the fd. An in-flight completion
            // for this token finds no connection and is discarded (the
            // outstanding counter is decremented on receipt either way).
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wakefd_rouses_epoll_and_drains() {
        let wake = WakeFd::new().expect("eventfd");
        let poller = Poller::new().expect("epoll");
        poller.add(wake.fd(), sys::EPOLLIN, 7).expect("add");
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        // Nothing pending: the wait times out empty.
        assert_eq!(poller.wait(&mut events, 0).expect("wait"), 0);
        wake.wake();
        wake.wake(); // coalesces into one readiness event
        let n = poller.wait(&mut events, 1000).expect("wait");
        assert_eq!(n, 1);
        let token = events[0].data;
        assert_eq!(token, 7);
        wake.drain();
        assert_eq!(poller.wait(&mut events, 0).expect("wait"), 0, "drained");
        // Interest can be rewired and removed.
        poller.modify(wake.fd(), sys::EPOLLIN, 9).expect("modify");
        poller.remove(wake.fd()).expect("remove");
        wake.wake();
        assert_eq!(
            poller.wait(&mut events, 0).expect("wait"),
            0,
            "deregistered"
        );
    }

    #[test]
    fn conn_state_machine_parses_incrementally() {
        let timing = Timing {
            header: Duration::from_secs(5),
            body: Duration::from_secs(5),
            idle: Duration::from_secs(5),
            request: Duration::from_secs(5),
            queue_depth: 8,
        };
        // A loopback pair gives the Conn a real (unused) stream.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let mut conn = Conn::new(client, timing.idle);
        assert!(matches!(conn.step(&timing, 1024), Step::Wait), "no bytes");
        conn.buf.extend_from_slice(b"POST /match?k=1 HTTP/1.1\r\n");
        assert!(matches!(conn.step(&timing, 1024), Step::Wait), "head open");
        conn.buf.extend_from_slice(b"content-length: 4\r\n\r\nab");
        assert!(matches!(conn.step(&timing, 1024), Step::Wait), "body short");
        conn.buf.extend_from_slice(b"cdGET /next HTTP/1.1\r\n\r\n");
        let Step::Request(req) = conn.step(&timing, 1024) else {
            panic!("complete request expected");
        };
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/match");
        assert_eq!(req.body, b"abcd");
        // The pipelined follow-up is intact and parses next.
        let Step::Request(next) = conn.step(&timing, 1024) else {
            panic!("pipelined request expected");
        };
        assert_eq!(next.path, "/next");
        assert!(matches!(conn.step(&timing, 1024), Step::Wait));
        // Parse failures and oversized bodies surface as terminal steps.
        conn.buf.extend_from_slice(b"BOGUS\r\n\r\n");
        assert!(matches!(conn.step(&timing, 1024), Step::BadRequest(_)));
        conn.reading = Reading::Idle;
        conn.buf.clear();
        conn.buf
            .extend_from_slice(b"PUT /schemas/x HTTP/1.1\r\ncontent-length: 9999\r\n\r\n");
        let Step::TooLarge { limit, actual } = conn.step(&timing, 1024) else {
            panic!("oversized body expected");
        };
        assert_eq!((limit, actual), (1024, 9999));
    }
}
