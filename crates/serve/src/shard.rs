//! Shared-nothing registry shards and the worker loop that animates them.
//!
//! Schema ownership is static: `shard_of(name) = fnv1a(name) % shards`.
//! Each [`Shard`] owns one partition of the name space — the compiled
//! trees, the LRU-capped pool of prepared artifacts for *its* schemas, and
//! its own [`MatchSession`] (label cache, matrix arena). A match on
//! `source` always executes on `shard_of(source)`'s thread, so the hot
//! per-session state is touched by exactly one thread; a cross-shard
//! *target* costs only an `Arc` clone of the owner's prepared artifact
//! (preparation is a pure function of the tree, so artifacts are
//! interchangeable between sessions — scores are bit-identical regardless
//! of which session runs the match).
//!
//! The reactor feeds shards through per-shard channels of [`Job`]s:
//! [`Job::Exec`] for single-shard work (PUT, `/match`), [`Job::Partial`]
//! for the scatter half of `/match/topk` — every shard ranks its own
//! partition, and the last one to finish merges the partials through a
//! total-order heap and emits the [`Completion`].

use crate::handlers::{self, ServeState, TopkPlan};
use crate::http::{Request, Response};
use crate::metrics::{Endpoint, RegistrySnapshot};
use qmatch_core::index::{CorpusIndex, Signature};
use qmatch_core::session::{MatchSession, OwnedPreparedSchema};
use qmatch_core::trace::{Phase, Span};
use qmatch_xsd::{SchemaTree, TreeProfile};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use crate::reactor::WakeFd;
use crate::registry::{Registered, SchemaInfo};

/// FNV-1a 64-bit — the shard-routing hash (stable across runs and
/// platforms, unlike `std`'s randomized hasher).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

struct Entry {
    tree: Arc<SchemaTree>,
    /// Raw XSD bytes as ingested — kept for snapshot compaction dumps.
    source: Arc<[u8]>,
    nodes: usize,
    max_depth: u32,
}

struct Resident {
    prepared: Arc<OwnedPreparedSchema>,
    /// Logical access time (monotone ticks), updated on every hit. An
    /// atomic so hits need only the shard's read lock.
    last_used: AtomicU64,
}

#[derive(Default)]
struct Inner {
    entries: BTreeMap<String, Entry>,
    resident: HashMap<String, Resident>,
    /// Shard-local candidate index over this partition's signatures,
    /// maintained on every registration (PUT and WAL replay both funnel
    /// through [`Shard::register`]).
    index: CorpusIndex,
}

/// One registry partition: the schemas this shard owns, their prepared
/// artifacts (LRU-capped), and the shard's private [`MatchSession`].
pub struct Shard {
    index: usize,
    session: MatchSession,
    inner: RwLock<Inner>,
    max_resident: usize,
    /// Logical clock for LRU ordering; shard-local (ownership is static,
    /// so cross-shard recency never needs comparing).
    tick: AtomicU64,
    prepare_hits: AtomicU64,
    prepare_misses: AtomicU64,
    evictions: AtomicU64,
    index_candidates: AtomicU64,
    index_filtered: AtomicU64,
    evolve_incremental: AtomicU64,
    evolve_full: AtomicU64,
    deletes: AtomicU64,
}

impl Shard {
    /// A shard keeping at most `max_resident` prepared schemas
    /// materialized (0 is treated as 1 — the schema being used must fit).
    pub fn new(index: usize, session: MatchSession, max_resident: usize) -> Shard {
        Shard {
            index,
            session,
            inner: RwLock::new(Inner::default()),
            max_resident: max_resident.max(1),
            tick: AtomicU64::new(0),
            prepare_hits: AtomicU64::new(0),
            prepare_misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            index_candidates: AtomicU64::new(0),
            index_filtered: AtomicU64::new(0),
            evolve_incremental: AtomicU64::new(0),
            evolve_full: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
        }
    }

    /// This shard's position in the registry's shard vector.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The shard-private match session (label cache, matrix arena).
    pub fn session(&self) -> &MatchSession {
        &self.session
    }

    /// Registers (or replaces) a schema this shard owns. The tree is
    /// prepared eagerly so the first match does not pay preparation
    /// latency.
    ///
    /// When a *revision* of a resident schema arrives (the hot-update
    /// path), the new tree is diffed against the resident one and the
    /// prepared artifacts and index signature are derived incrementally —
    /// bit-identical to the from-scratch path, counted by the
    /// `qmatch_evolve_*` metrics.
    pub fn register(&self, name: &str, tree: SchemaTree, source: &[u8]) -> Registered {
        let profile = TreeProfile::of(&tree);
        let tree = Arc::new(tree);
        let (prepared, signature) = match self.try_evolve(name, &tree) {
            Some(pair) => {
                self.evolve_incremental.fetch_add(1, Ordering::Relaxed);
                pair
            }
            None => {
                if self.contains(name) {
                    self.evolve_full.fetch_add(1, Ordering::Relaxed);
                }
                let prepared = Arc::new(self.session.prepare_owned(tree.clone()));
                let signature = self.session.signature(prepared.prepared());
                (prepared, signature)
            }
        };
        let mut inner = self.inner.write().expect("shard lock");
        inner.index.insert(name, signature);
        let tick = self.next_tick();
        let replaced = inner
            .entries
            .insert(
                name.to_owned(),
                Entry {
                    tree,
                    source: Arc::from(source),
                    nodes: profile.nodes,
                    max_depth: profile.max_depth,
                },
            )
            .is_some();
        inner.resident.insert(
            name.to_owned(),
            Resident {
                prepared,
                last_used: AtomicU64::new(tick),
            },
        );
        self.evict_over_cap(&mut inner, name);
        Registered {
            replaced,
            nodes: profile.nodes,
            max_depth: profile.max_depth,
        }
    }

    /// The incremental half of [`Shard::register`]: when the old revision
    /// of `name` is resident, reuse it. The diff drives an incremental
    /// re-prepare (symbol + structural-table reuse), and the index
    /// signature evolves in place unless labels were removed — then the
    /// signature (only) is rebuilt from scratch. `None` means the caller
    /// must take the full path: first registration, or the prepared
    /// artifact was evicted (re-deriving it would cost a full prepare
    /// anyway).
    fn try_evolve(
        &self,
        name: &str,
        new_tree: &Arc<SchemaTree>,
    ) -> Option<(Arc<OwnedPreparedSchema>, Signature)> {
        let (old_tree, old_prepared, old_signature) = {
            let inner = self.inner.read().expect("shard lock");
            let entry = inner.entries.get(name)?;
            let resident = inner.resident.get(name)?;
            let signature = inner.index.get(name)?.clone();
            (entry.tree.clone(), resident.prepared.clone(), signature)
        };
        let diff = self.session.diff_trees(&old_tree, new_tree);
        let prepared = Arc::new(self.session.reprepare_owned(
            &old_prepared,
            new_tree.clone(),
            &diff,
        ));
        let signature = self
            .session
            .signature_evolved(&old_signature, old_prepared.prepared(), prepared.prepared())
            .unwrap_or_else(|| self.session.signature(prepared.prepared()));
        Some((prepared, signature))
    }

    /// Removes a schema this shard owns: the compiled tree, its resident
    /// prepared artifact, and its index entry. Returns whether the name
    /// was registered.
    pub fn remove(&self, name: &str) -> bool {
        let mut inner = self.inner.write().expect("shard lock");
        inner.index.remove(name);
        inner.resident.remove(name);
        let removed = inner.entries.remove(name).is_some();
        if removed {
            self.deletes.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Evicts least-recently-used residents until the cap holds, never
    /// evicting `keep` (the schema just touched). Ties break by name so
    /// eviction never depends on `HashMap` iteration order.
    fn evict_over_cap(&self, inner: &mut Inner, keep: &str) {
        while inner.resident.len() > self.max_resident {
            let victim = inner
                .resident
                .iter()
                .filter(|(name, _)| *name != keep)
                .min_by(|(an, a), (bn, b)| {
                    a.last_used
                        .load(Ordering::Relaxed)
                        .cmp(&b.last_used.load(Ordering::Relaxed))
                        .then_with(|| an.cmp(bn))
                })
                .map(|(name, _)| name.clone());
            match victim {
                Some(name) => {
                    inner.resident.remove(&name);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
    }

    /// The prepared schema for `name` (owned by this shard), re-preparing
    /// it if the LRU cap evicted it. `None` when the name is unknown.
    pub fn prepared(&self, name: &str) -> Option<Arc<OwnedPreparedSchema>> {
        {
            let inner = self.inner.read().expect("shard lock");
            if !inner.entries.contains_key(name) {
                return None;
            }
            if let Some(resident) = inner.resident.get(name) {
                resident
                    .last_used
                    .store(self.next_tick(), Ordering::Relaxed);
                self.prepare_hits.fetch_add(1, Ordering::Relaxed);
                return Some(resident.prepared.clone());
            }
        }
        self.prepare_misses.fetch_add(1, Ordering::Relaxed);
        let tree = {
            let inner = self.inner.read().expect("shard lock");
            inner.entries.get(name)?.tree.clone()
        };
        // Prepare outside any lock: pure work, possibly raced, harmless.
        let prepared = Arc::new(self.session.prepare_owned(tree));
        let mut inner = self.inner.write().expect("shard lock");
        if !inner.entries.contains_key(name) {
            return None; // deleted concurrently (future-proofing)
        }
        let tick = self.next_tick();
        let resident = inner
            .resident
            .entry(name.to_owned())
            .or_insert_with(|| Resident {
                prepared,
                last_used: AtomicU64::new(tick),
            });
        resident.last_used.store(tick, Ordering::Relaxed);
        let out = resident.prepared.clone();
        self.evict_over_cap(&mut inner, name);
        Some(out)
    }

    /// Whether this shard owns a schema called `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.inner
            .read()
            .expect("shard lock")
            .entries
            .contains_key(name)
    }

    /// Number of schemas this shard owns.
    pub fn len(&self) -> usize {
        self.inner.read().expect("shard lock").entries.len()
    }

    /// True when the shard owns nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Names this shard owns, sorted.
    pub fn names(&self) -> Vec<String> {
        self.inner
            .read()
            .expect("shard lock")
            .entries
            .keys()
            .cloned()
            .collect()
    }

    /// The candidate floor of this shard's index: under the `auto` index
    /// policy, registries at or below this size rank exhaustively.
    pub fn candidate_floor(&self) -> usize {
        self.inner.read().expect("shard lock").index.params().floor
    }

    /// Candidate names from this shard's partition for an indexed topk
    /// query, sorted. The candidate predicate is pair-local (see
    /// `qmatch_core::index`), so the union across shards is independent
    /// of the shard count. Feeds the `qmatch_index_candidates` /
    /// `qmatch_index_filtered_total` counters.
    pub fn candidates(&self, query: &Signature) -> Vec<String> {
        let set = self
            .inner
            .read()
            .expect("shard lock")
            .index
            .candidates(query);
        self.index_candidates
            .fetch_add(set.names.len() as u64, Ordering::Relaxed);
        self.index_filtered
            .fetch_add(set.pruned as u64, Ordering::Relaxed);
        set.names
    }

    /// Listing metadata for this shard's partition, sorted by name.
    pub fn list(&self) -> Vec<SchemaInfo> {
        let inner = self.inner.read().expect("shard lock");
        inner
            .entries
            .iter()
            .map(|(name, entry)| SchemaInfo {
                name: name.clone(),
                source_bytes: entry.source.len() as u64,
                nodes: entry.nodes,
                max_depth: entry.max_depth,
                resident: inner.resident.contains_key(name),
            })
            .collect()
    }

    /// Appends `(name, raw source bytes)` for every owned schema — the
    /// compaction dump. Cheap: sources are shared `Arc<[u8]>`s.
    pub fn dump_into(&self, out: &mut Vec<(String, Arc<[u8]>)>) {
        let inner = self.inner.read().expect("shard lock");
        out.extend(
            inner
                .entries
                .iter()
                .map(|(name, entry)| (name.clone(), entry.source.clone())),
        );
    }

    /// This shard's contribution to the registry-wide counters snapshot.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let (schemas, resident) = {
            let inner = self.inner.read().expect("shard lock");
            (inner.entries.len() as u64, inner.resident.len() as u64)
        };
        let labels = self.session.cache_stats();
        RegistrySnapshot {
            schemas,
            resident,
            prepare_hits: self.prepare_hits.load(Ordering::Relaxed),
            prepare_misses: self.prepare_misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            label_hits: labels.hits,
            label_misses: labels.misses,
            index_candidates: self.index_candidates.load(Ordering::Relaxed),
            index_filtered: self.index_filtered.load(Ordering::Relaxed),
            evolve_incremental: self.evolve_incremental.load(Ordering::Relaxed),
            evolve_full: self.evolve_full.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
        }
    }
}

/// Per-request bookkeeping that rides along a queued job and returns with
/// its [`Completion`].
#[derive(Debug, Clone)]
pub struct JobCtx {
    /// The reactor's connection token the response belongs to.
    pub token: u64,
    /// The `X-Request-Id` to echo (client-supplied or minted `q-N`).
    pub request_id: String,
    /// Numeric correlation id threaded into trace spans.
    pub rid: u64,
    /// When the request was fully parsed (request latency baseline).
    pub started: Instant,
    /// When the job entered the match queue (queue-wait baseline).
    pub enqueued: Instant,
    /// Absolute per-request deadline; expired jobs answer `503`.
    pub deadline: Instant,
    /// Request body bytes (for the request-phase span).
    pub body_len: u64,
}

/// The shared fan-out state of one `/match/topk` scatter-gather.
pub struct Scatter {
    /// The validated query (source artifact, `k`, precision, path).
    pub plan: TopkPlan,
    /// Request bookkeeping (one per scatter, shared by all partials).
    pub ctx: JobCtx,
    /// Shards still to report; the decrement-to-zero shard merges.
    pub remaining: AtomicUsize,
    /// Set when any shard saw the deadline expire — the merge answers 503.
    pub expired: AtomicBool,
    /// Per-shard partial rankings, gathered for the merge.
    pub partials: Mutex<Vec<(String, f64)>>,
}

/// One unit of work on a shard's queue.
pub enum Job {
    /// A whole request executing on its owner shard (PUT, `/match`).
    Exec {
        /// The parsed request (boxed: a `Request` carries its body buffer
        /// and header map, and would dwarf the `Partial` variant inline).
        req: Box<Request>,
        /// Response routing and timing bookkeeping.
        ctx: JobCtx,
        /// Endpoint label used if the job dies before the handler runs.
        endpoint: Endpoint,
    },
    /// One shard's share of a `/match/topk` scatter-gather.
    Partial {
        /// The scatter this partial belongs to.
        scatter: Arc<Scatter>,
    },
}

/// A finished job on its way back to the reactor.
pub struct Completion {
    /// The bookkeeping that accompanied the job.
    pub ctx: JobCtx,
    /// Endpoint label for the request counters.
    pub endpoint: Endpoint,
    /// The response to serialize (without `X-Request-Id`, which the
    /// reactor appends).
    pub response: Response,
}

/// The shard side of the completion channel: sending also kicks the
/// reactor's eventfd so a blocked `epoll_wait` returns immediately.
#[derive(Clone)]
pub struct CompletionSender {
    tx: Sender<Completion>,
    wake: Arc<WakeFd>,
}

impl CompletionSender {
    /// Pairs a channel sender with the reactor's wake fd.
    pub fn new(tx: Sender<Completion>, wake: Arc<WakeFd>) -> CompletionSender {
        CompletionSender { tx, wake }
    }

    /// Delivers one completion and wakes the reactor. A send error means
    /// the reactor is gone — the response has nowhere to go, so it is
    /// dropped silently.
    pub fn send(&self, completion: Completion) {
        let _ = self.tx.send(completion);
        self.wake.wake();
    }
}

/// The shard worker loop: drain jobs until the reactor hangs up the
/// channel. Runs on a dedicated thread named `qmatch-shard-{index}`.
pub fn run_worker(
    state: &ServeState,
    shard_index: usize,
    jobs: Receiver<Job>,
    done: CompletionSender,
) {
    let metrics = &state.metrics;
    while let Ok(job) = jobs.recv() {
        match job {
            Job::Exec { req, ctx, endpoint } => {
                let wait = ctx.enqueued.elapsed();
                metrics.record_queue_wait(wait.as_micros() as u64);
                metrics.record_phase(&Span {
                    rows: 1,
                    wall: wait,
                    request: ctx.rid,
                    ..Span::empty(Phase::Queue)
                });
                let (endpoint, response) = if Instant::now() >= ctx.deadline {
                    let response = handlers::finalize(
                        &req.path,
                        endpoint,
                        handlers::error(
                            503,
                            "deadline_exceeded",
                            "request exceeded its deadline budget in the match queue",
                        ),
                    );
                    (endpoint, response)
                } else {
                    let t0 = Instant::now();
                    let (endpoint, response) = handlers::handle(&req, state);
                    metrics.record_phase(&Span {
                        rows: 1,
                        cells: req.body.len() as u64,
                        wall: t0.elapsed(),
                        request: ctx.rid,
                        ..Span::empty(Phase::Shard)
                    });
                    (endpoint, response)
                };
                done.send(Completion {
                    ctx,
                    endpoint,
                    response,
                });
            }
            Job::Partial { scatter } => {
                let wait = scatter.ctx.enqueued.elapsed();
                metrics.record_queue_wait(wait.as_micros() as u64);
                metrics.record_phase(&Span {
                    rows: 1,
                    wall: wait,
                    request: scatter.ctx.rid,
                    ..Span::empty(Phase::Queue)
                });
                if Instant::now() >= scatter.ctx.deadline {
                    scatter.expired.store(true, Ordering::Relaxed);
                } else {
                    let t0 = Instant::now();
                    let partial = handlers::topk_partial(state, shard_index, &scatter.plan);
                    metrics.record_phase(&Span {
                        rows: partial.len() as u64,
                        wall: t0.elapsed(),
                        request: scatter.ctx.rid,
                        ..Span::empty(Phase::Shard)
                    });
                    scatter
                        .partials
                        .lock()
                        .expect("scatter partials lock")
                        .extend(partial);
                }
                // AcqRel so the merging shard observes every other shard's
                // partials written before its decrement.
                if scatter.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    let response = if scatter.expired.load(Ordering::Relaxed) {
                        handlers::error(
                            503,
                            "deadline_exceeded",
                            "request exceeded its deadline budget in the match queue",
                        )
                    } else {
                        let partials = std::mem::take(
                            &mut *scatter.partials.lock().expect("scatter partials lock"),
                        );
                        metrics.record_scatter_gather(
                            scatter.ctx.enqueued.elapsed().as_micros() as u64
                        );
                        handlers::topk_render(&scatter.plan, partials)
                    };
                    let response =
                        handlers::finalize(&scatter.plan.path, Endpoint::MatchTopk, response);
                    done.send(Completion {
                        ctx: scatter.ctx.clone(),
                        endpoint: Endpoint::MatchTopk,
                        response,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmatch_core::model::MatchConfig;

    fn tree(root: &str) -> SchemaTree {
        SchemaTree::from_labels(root, &[(root, None), ("OrderNo", Some(0))])
    }

    fn shard(max_resident: usize) -> Shard {
        Shard::new(0, MatchSession::new(MatchConfig::default()), max_resident)
    }

    #[test]
    fn fnv1a_is_stable() {
        // Reference values for the 64-bit FNV-1a parameters.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a(b"po1"), fnv1a(b"po2"));
    }

    #[test]
    fn register_prepared_and_lru() {
        let s = shard(2);
        assert!(s.is_empty());
        let first = s.register("po", tree("PO"), b"<po/>");
        assert!(!first.replaced);
        assert_eq!(first.nodes, 2);
        assert!(s.register("po", tree("PO2"), b"<po v2/>").replaced);
        assert_eq!(s.len(), 1);
        assert_eq!(s.list()[0].source_bytes, 8);
        s.register("a", tree("A"), b"<a/>");
        s.register("b", tree("B"), b"<b/>"); // evicts the LRU ("po")
        assert_eq!(s.snapshot().evictions, 1);
        assert!(s.contains("po"), "evicted from residence, not the store");
        let prepared = s.prepared("po").expect("still registered");
        assert_eq!(prepared.prepared().tree().name(), "PO2");
        assert_eq!(s.snapshot().prepare_misses, 1);
        assert_eq!(s.prepared("missing").map(|_| ()), None);
    }

    #[test]
    fn replacing_a_resident_schema_takes_the_evolve_fast_path() {
        let s = shard(2);
        s.register("po", tree("PO"), b"<po/>");
        assert_eq!(s.snapshot().evolve_incremental, 0);
        // Old revision is registered, resident, and indexed → diff-guided
        // re-prepare instead of a from-scratch prepare.
        let second = s.register("po", tree("PO"), b"<po v2/>");
        assert!(second.replaced);
        let snap = s.snapshot();
        assert_eq!(snap.evolve_incremental, 1);
        assert_eq!(snap.evolve_full, 0);
        // The evolved entry still serves matches.
        let prepared = s.prepared("po").expect("registered");
        assert_eq!(prepared.prepared().tree().len(), 2);
    }

    #[test]
    fn replacing_an_evicted_schema_counts_a_full_prepare() {
        let s = shard(1);
        s.register("po", tree("PO"), b"<po/>");
        s.register("other", tree("O"), b"<o/>"); // evicts "po"
        assert!(s.register("po", tree("PO"), b"<po v2/>").replaced);
        let snap = s.snapshot();
        assert_eq!(snap.evolve_incremental, 0, "old revision was not resident");
        assert_eq!(snap.evolve_full, 1);
    }

    #[test]
    fn remove_clears_every_table_and_counts() {
        let s = shard(2);
        s.register("po", tree("PO"), b"<po/>");
        assert!(s.remove("po"));
        assert!(!s.contains("po"));
        assert!(s.is_empty());
        assert_eq!(s.prepared("po").map(|_| ()), None);
        assert_eq!(s.snapshot().deletes, 1);
        assert!(!s.remove("po"), "second delete is a no-op");
        assert_eq!(s.snapshot().deletes, 1);
        // A removed name can be registered afresh — and the re-register is
        // a first registration, not a replacement or an evolve.
        let again = s.register("po", tree("PO"), b"<po v3/>");
        assert!(!again.replaced);
        assert_eq!(s.snapshot().evolve_full, 0);
    }

    #[test]
    fn dump_preserves_raw_source_bytes() {
        let s = shard(4);
        s.register("a", tree("A"), b"<alpha/>");
        s.register("b", tree("B"), b"<beta/>");
        let mut dump = Vec::new();
        s.dump_into(&mut dump);
        dump.sort_by(|x, y| x.0.cmp(&y.0));
        assert_eq!(dump.len(), 2);
        assert_eq!(&*dump[0].1, b"<alpha/>".as_slice());
        assert_eq!(&*dump[1].1, b"<beta/>".as_slice());
    }
}
