//! Lock-free server counters and their plain-text rendering.
//!
//! Everything is an atomic, so the hot path (one [`Metrics::record`] per
//! request) never blocks; `GET /metrics` and the shutdown summary read the
//! same counters. The exposition format is Prometheus-flavoured plain text
//! (`qmatch_`-prefixed), simple enough to scrape with `grep`.
//!
//! [`PhaseSink`] adapts [`Metrics`] into a
//! [`TraceSink`]: installed on the shared
//! match session, it folds every pipeline span (label-matrix builds,
//! wavefront passes, prepares) into per-phase counters and wall-time
//! histograms that `GET /metrics` exposes next to the request counters.

use crate::json::fmt_f64;
use qmatch_core::trace::{Phase, Span, TraceSink};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The endpoints the server distinguishes in its counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /healthz`.
    Healthz,
    /// `GET /metrics`.
    Metrics,
    /// `PUT /schemas/{name}`.
    SchemasPut,
    /// `DELETE /schemas/{name}`.
    SchemasDelete,
    /// `GET /schemas`.
    SchemasList,
    /// `POST /match`.
    Match,
    /// `POST /match/topk`.
    MatchTopk,
    /// Anything else (404s, bad requests, unknown paths).
    Other,
}

impl Endpoint {
    /// All endpoints, in rendering order.
    pub const ALL: [Endpoint; 8] = [
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::SchemasPut,
        Endpoint::SchemasDelete,
        Endpoint::SchemasList,
        Endpoint::Match,
        Endpoint::MatchTopk,
        Endpoint::Other,
    ];

    /// The label used in the exposition format.
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::SchemasPut => "schemas_put",
            Endpoint::SchemasDelete => "schemas_delete",
            Endpoint::SchemasList => "schemas_list",
            Endpoint::Match => "match",
            Endpoint::MatchTopk => "match_topk",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        Endpoint::ALL
            .iter()
            .position(|e| *e == self)
            .expect("listed")
    }
}

/// Upper bounds (µs) of the latency histogram buckets; the final implicit
/// bucket is `+Inf`.
const LATENCY_BOUNDS_US: [u64; 7] = [100, 500, 1_000, 5_000, 10_000, 100_000, 1_000_000];

/// The cumulative-histogram bucket a µs sample falls into.
fn bucket_of(micros: u64) -> usize {
    LATENCY_BOUNDS_US
        .iter()
        .position(|&bound| micros <= bound)
        .unwrap_or(LATENCY_BOUNDS_US.len())
}

/// Counters describing everything the server has done so far.
#[derive(Debug, Default)]
pub struct Metrics {
    requests: [AtomicU64; 8],
    status_2xx: AtomicU64,
    status_4xx: AtomicU64,
    status_5xx: AtomicU64,
    latency_buckets: [AtomicU64; 8],
    latency_sum_us: AtomicU64,
    queue_wait_buckets: [AtomicU64; 8],
    queue_wait_sum_us: AtomicU64,
    queue_wait_count: AtomicU64,
    scatter_buckets: [AtomicU64; 8],
    scatter_sum_us: AtomicU64,
    scatter_count: AtomicU64,
    bytes_ingested: AtomicU64,
    rejected_by_limits: AtomicU64,
    rejected_backpressure: AtomicU64,
    wal_bytes: AtomicU64,
    request_seq: AtomicU64,
    phase_count: [AtomicU64; Phase::COUNT],
    phase_wall_us: [AtomicU64; Phase::COUNT],
    phase_cells: [AtomicU64; Phase::COUNT],
    phase_buckets: [[AtomicU64; 8]; Phase::COUNT],
}

/// A consistent snapshot of registry/session state, supplied by the caller
/// when rendering (metrics itself owns only request-level counters).
#[derive(Debug, Clone, Copy, Default)]
pub struct RegistrySnapshot {
    /// Registered schema count.
    pub schemas: u64,
    /// Prepared schemas currently resident.
    pub resident: u64,
    /// Prepared-schema lookups served from residence.
    pub prepare_hits: u64,
    /// Lookups that had to (re-)prepare.
    pub prepare_misses: u64,
    /// Prepared schemas evicted by the LRU cap.
    pub evictions: u64,
    /// Label-cache hits of the shared match session.
    pub label_hits: u64,
    /// Label-cache misses of the shared match session.
    pub label_misses: u64,
    /// Schemas admitted as topk candidates by the shard indexes.
    pub index_candidates: u64,
    /// Schemas pruned by the shard indexes before the DP ran.
    pub index_filtered: u64,
    /// Schema replacements served by the diff-guided incremental
    /// re-prepare (the `PUT /schemas/{name}` hot-update fast path).
    pub evolve_incremental: u64,
    /// Schema replacements that fell back to a full from-scratch prepare
    /// (old revision not resident, or the diff was unusable).
    pub evolve_full: u64,
    /// Schemas removed via `DELETE /schemas/{name}`.
    pub deletes: u64,
}

impl RegistrySnapshot {
    fn label_hit_rate(&self) -> f64 {
        let total = self.label_hits + self.label_misses;
        if total == 0 {
            0.0
        } else {
            self.label_hits as f64 / total as f64
        }
    }
}

impl Metrics {
    /// Fresh zeroed counters.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Records one finished request.
    pub fn record(&self, endpoint: Endpoint, status: u16, micros: u64) {
        self.requests[endpoint.index()].fetch_add(1, Ordering::Relaxed);
        let class = match status {
            200..=299 => &self.status_2xx,
            400..=499 => &self.status_4xx,
            _ => &self.status_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
        self.latency_buckets[bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(micros, Ordering::Relaxed);
    }

    /// Records the queue wait of one dequeued match-queue job.
    pub fn record_queue_wait(&self, micros: u64) {
        self.queue_wait_buckets[bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
        self.queue_wait_sum_us.fetch_add(micros, Ordering::Relaxed);
        self.queue_wait_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the wall time of one cross-shard topk scatter-gather (from
    /// the first partial enqueued to the merged ranking).
    pub fn record_scatter_gather(&self, micros: u64) {
        self.scatter_buckets[bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
        self.scatter_sum_us.fetch_add(micros, Ordering::Relaxed);
        self.scatter_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds successfully read schema-body bytes.
    pub fn add_ingested(&self, bytes: u64) {
        self.bytes_ingested.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Counts one request rejected by the ingestion limits.
    pub fn add_rejected_by_limits(&self) {
        self.rejected_by_limits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request shed with `429` because the match queue was full.
    pub fn add_rejected_backpressure(&self) {
        self.rejected_backpressure.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds bytes appended to the registry write-ahead log (a cumulative
    /// counter; compaction truncates the file but never this).
    pub fn add_wal_bytes(&self, bytes: u64) {
        self.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Mints the next server-assigned request id (`q-1`, `q-2`, ...);
    /// echoed back to clients as `X-Request-Id` when they did not supply
    /// their own.
    pub fn next_request_id(&self) -> String {
        format!("q-{}", self.request_seq.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Request ids minted so far.
    pub fn request_ids_minted(&self) -> u64 {
        self.request_seq.load(Ordering::Relaxed)
    }

    /// Folds one pipeline span into the per-phase counters and histograms.
    /// Called by [`PhaseSink`] from whatever thread coordinates the match —
    /// relaxed atomics only, never blocking.
    pub fn record_phase(&self, span: &Span) {
        let i = span.phase.index();
        let micros = span.wall.as_micros() as u64;
        self.phase_count[i].fetch_add(1, Ordering::Relaxed);
        self.phase_wall_us[i].fetch_add(micros, Ordering::Relaxed);
        self.phase_cells[i].fetch_add(span.cells, Ordering::Relaxed);
        self.phase_buckets[i][bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total requests recorded so far.
    pub fn total_requests(&self) -> u64 {
        self.requests
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Renders the exposition text for `GET /metrics`.
    pub fn render(&self, registry: &RegistrySnapshot) -> String {
        let mut out = String::with_capacity(1024);
        let total = self.total_requests();
        let _ = writeln!(out, "qmatch_requests_total {total}");
        for endpoint in Endpoint::ALL {
            let _ = writeln!(
                out,
                "qmatch_requests{{endpoint=\"{}\"}} {}",
                endpoint.name(),
                self.requests[endpoint.index()].load(Ordering::Relaxed)
            );
        }
        for (class, counter) in [
            ("2xx", &self.status_2xx),
            ("4xx", &self.status_4xx),
            ("5xx", &self.status_5xx),
        ] {
            let _ = writeln!(
                out,
                "qmatch_responses{{class=\"{class}\"}} {}",
                counter.load(Ordering::Relaxed)
            );
        }
        let mut cumulative = 0u64;
        for (i, counter) in self.latency_buckets.iter().enumerate() {
            cumulative += counter.load(Ordering::Relaxed);
            let bound = LATENCY_BOUNDS_US
                .get(i)
                .map(|b| b.to_string())
                .unwrap_or_else(|| "+Inf".to_owned());
            let _ = writeln!(
                out,
                "qmatch_request_latency_us_bucket{{le=\"{bound}\"}} {cumulative}"
            );
        }
        let _ = writeln!(
            out,
            "qmatch_request_latency_us_sum {}",
            self.latency_sum_us.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "qmatch_request_latency_us_count {total}");
        for (prefix, buckets, sum, count) in [
            (
                "qmatch_queue_wait_us",
                &self.queue_wait_buckets,
                &self.queue_wait_sum_us,
                &self.queue_wait_count,
            ),
            (
                "qmatch_shard_scatter_us",
                &self.scatter_buckets,
                &self.scatter_sum_us,
                &self.scatter_count,
            ),
        ] {
            let mut cumulative = 0u64;
            for (i, counter) in buckets.iter().enumerate() {
                cumulative += counter.load(Ordering::Relaxed);
                let bound = LATENCY_BOUNDS_US
                    .get(i)
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "+Inf".to_owned());
                let _ = writeln!(out, "{prefix}_bucket{{le=\"{bound}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{prefix}_sum {}", sum.load(Ordering::Relaxed));
            let _ = writeln!(out, "{prefix}_count {}", count.load(Ordering::Relaxed));
        }
        let _ = writeln!(
            out,
            "qmatch_bytes_ingested_total {}",
            self.bytes_ingested.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "qmatch_rejected_by_limits_total {}",
            self.rejected_by_limits.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "qmatch_rejected_backpressure_total {}",
            self.rejected_backpressure.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "qmatch_wal_bytes_total {}",
            self.wal_bytes.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "qmatch_registry_schemas {}", registry.schemas);
        let _ = writeln!(out, "qmatch_registry_resident {}", registry.resident);
        let _ = writeln!(out, "qmatch_prepare_hits_total {}", registry.prepare_hits);
        let _ = writeln!(
            out,
            "qmatch_prepare_misses_total {}",
            registry.prepare_misses
        );
        let _ = writeln!(out, "qmatch_prepare_evictions_total {}", registry.evictions);
        let _ = writeln!(out, "qmatch_label_cache_hits_total {}", registry.label_hits);
        let _ = writeln!(
            out,
            "qmatch_label_cache_misses_total {}",
            registry.label_misses
        );
        let _ = writeln!(
            out,
            "qmatch_label_cache_hit_rate {}",
            fmt_f64(registry.label_hit_rate())
        );
        let _ = writeln!(out, "qmatch_index_candidates {}", registry.index_candidates);
        let _ = writeln!(
            out,
            "qmatch_index_filtered_total {}",
            registry.index_filtered
        );
        let _ = writeln!(
            out,
            "qmatch_evolve_incremental_total {}",
            registry.evolve_incremental
        );
        let _ = writeln!(out, "qmatch_evolve_full_total {}", registry.evolve_full);
        let _ = writeln!(out, "qmatch_schema_deletes_total {}", registry.deletes);
        // Per-phase pipeline observability (fed by PhaseSink). Phases that
        // never fired are skipped so a fresh server stays terse.
        for phase in Phase::ALL {
            let i = phase.index();
            let count = self.phase_count[i].load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            let name = phase.name();
            let _ = writeln!(out, "qmatch_phase_count{{phase=\"{name}\"}} {count}");
            let _ = writeln!(
                out,
                "qmatch_phase_wall_us_sum{{phase=\"{name}\"}} {}",
                self.phase_wall_us[i].load(Ordering::Relaxed)
            );
            let _ = writeln!(
                out,
                "qmatch_phase_cells_total{{phase=\"{name}\"}} {}",
                self.phase_cells[i].load(Ordering::Relaxed)
            );
            let mut cumulative = 0u64;
            for (b, counter) in self.phase_buckets[i].iter().enumerate() {
                cumulative += counter.load(Ordering::Relaxed);
                let bound = LATENCY_BOUNDS_US
                    .get(b)
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "+Inf".to_owned());
                let _ = writeln!(
                    out,
                    "qmatch_phase_wall_us_bucket{{phase=\"{name}\",le=\"{bound}\"}} {cumulative}"
                );
            }
        }
        out
    }

    /// The human-readable shutdown summary printed to stderr by
    /// `qmatch serve`.
    pub fn summary(&self, registry: &RegistrySnapshot) -> String {
        let total = self.total_requests();
        let mean_us = self
            .latency_sum_us
            .load(Ordering::Relaxed)
            .checked_div(total)
            .unwrap_or(0);
        let per_endpoint: Vec<String> = Endpoint::ALL
            .iter()
            .filter_map(|e| {
                let n = self.requests[e.index()].load(Ordering::Relaxed);
                (n > 0).then(|| format!("{}={n}", e.name()))
            })
            .collect();
        let minted = self.request_ids_minted();
        let ids = if minted == 0 {
            "no request ids minted".to_owned()
        } else {
            format!("request ids q-1..q-{minted}")
        };
        let phases: Vec<String> = Phase::ALL
            .iter()
            .filter_map(|p| {
                let n = self.phase_count[p.index()].load(Ordering::Relaxed);
                (n > 0).then(|| {
                    format!(
                        "{}={n}/{:.1}ms",
                        p.name(),
                        self.phase_wall_us[p.index()].load(Ordering::Relaxed) as f64 / 1e3
                    )
                })
            })
            .collect();
        let mut summary = format!(
            "served {total} request(s) ({}), {} schema(s) registered, \
             {} byte(s) ingested, {} rejected by limits, \
             {} shed by backpressure, {} WAL byte(s) appended, \
             label cache hit rate {:.2}, mean latency {mean_us}us, {ids}",
            if per_endpoint.is_empty() {
                "none".to_owned()
            } else {
                per_endpoint.join(" ")
            },
            registry.schemas,
            self.bytes_ingested.load(Ordering::Relaxed),
            self.rejected_by_limits.load(Ordering::Relaxed),
            self.rejected_backpressure.load(Ordering::Relaxed),
            self.wal_bytes.load(Ordering::Relaxed),
            registry.label_hit_rate(),
        );
        if !phases.is_empty() {
            summary.push_str(&format!("\nphases (count/wall): {}", phases.join(" ")));
        }
        summary
    }
}

/// A [`TraceSink`] that feeds pipeline spans into [`Metrics`].
///
/// `Server::bind` installs one on the shared match session, so every
/// prepare, label-matrix build, and wavefront pass run on behalf of a
/// request lands in the `qmatch_phase_*` series of `GET /metrics`.
/// Recording is a handful of relaxed atomic adds — safe from any worker
/// thread, and the spans never influence match scores.
#[derive(Debug, Clone)]
pub struct PhaseSink(Arc<Metrics>);

impl PhaseSink {
    /// Wraps the shared metrics.
    pub fn new(metrics: Arc<Metrics>) -> PhaseSink {
        PhaseSink(metrics)
    }
}

impl TraceSink for PhaseSink {
    fn record(&self, span: &Span) {
        self.0.record_phase(span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_classifies_and_buckets() {
        let m = Metrics::new();
        m.record(Endpoint::Match, 200, 50);
        m.record(Endpoint::Match, 200, 2_000);
        m.record(Endpoint::SchemasPut, 413, 10);
        m.record(Endpoint::Other, 500, 2_000_000);
        assert_eq!(m.total_requests(), 4);
        let text = m.render(&RegistrySnapshot::default());
        assert!(text.contains("qmatch_requests_total 4"), "{text}");
        assert!(text.contains("qmatch_requests{endpoint=\"match\"} 2"));
        assert!(text.contains("qmatch_responses{class=\"2xx\"} 2"));
        assert!(text.contains("qmatch_responses{class=\"4xx\"} 1"));
        assert!(text.contains("qmatch_responses{class=\"5xx\"} 1"));
        // Histogram is cumulative: both sub-100us samples land in le=100,
        // the 2ms sample first appears at le=5000, +Inf sees all four.
        assert!(text.contains("qmatch_request_latency_us_bucket{le=\"100\"} 2"));
        assert!(text.contains("qmatch_request_latency_us_bucket{le=\"5000\"} 3"));
        assert!(text.contains("qmatch_request_latency_us_bucket{le=\"+Inf\"} 4"));
    }

    #[test]
    fn ingestion_counters_and_registry_snapshot_render() {
        let m = Metrics::new();
        m.add_ingested(1234);
        m.add_rejected_by_limits();
        let snapshot = RegistrySnapshot {
            schemas: 3,
            resident: 2,
            prepare_hits: 10,
            prepare_misses: 3,
            evictions: 1,
            label_hits: 75,
            label_misses: 25,
            index_candidates: 7,
            index_filtered: 93,
            evolve_incremental: 4,
            evolve_full: 2,
            deletes: 1,
        };
        let text = m.render(&snapshot);
        assert!(text.contains("qmatch_bytes_ingested_total 1234"));
        assert!(text.contains("qmatch_rejected_by_limits_total 1"));
        assert!(text.contains("qmatch_registry_schemas 3"));
        assert!(text.contains("qmatch_label_cache_hit_rate 0.75"));
        assert!(text.contains("qmatch_index_candidates 7"));
        assert!(text.contains("qmatch_index_filtered_total 93"));
        assert!(text.contains("qmatch_evolve_incremental_total 4"));
        assert!(text.contains("qmatch_evolve_full_total 2"));
        assert!(text.contains("qmatch_schema_deletes_total 1"));
        let summary = m.summary(&snapshot);
        assert!(summary.contains("3 schema(s)"), "{summary}");
        assert!(summary.contains("hit rate 0.75"), "{summary}");
        assert!(summary.contains("1 rejected by limits"), "{summary}");
    }

    #[test]
    fn phase_sink_feeds_phase_series() {
        let m = Arc::new(Metrics::new());
        let sink = PhaseSink::new(m.clone());
        let span = Span {
            cells: 42,
            wall: std::time::Duration::from_micros(250),
            ..Span::empty(Phase::HybridWave)
        };
        sink.record(&span);
        let text = m.render(&RegistrySnapshot::default());
        assert!(
            text.contains("qmatch_phase_count{phase=\"hybrid_wave\"} 1"),
            "{text}"
        );
        assert!(text.contains("qmatch_phase_wall_us_sum{phase=\"hybrid_wave\"} 250"));
        assert!(text.contains("qmatch_phase_cells_total{phase=\"hybrid_wave\"} 42"));
        assert!(text.contains("qmatch_phase_wall_us_bucket{phase=\"hybrid_wave\",le=\"500\"} 1"));
        // Phases that never fired are skipped entirely.
        assert!(!text.contains("phase=\"labels\""), "{text}");
    }

    #[test]
    fn request_ids_are_sequential_and_summarized() {
        let m = Metrics::new();
        assert_eq!(m.next_request_id(), "q-1");
        assert_eq!(m.next_request_id(), "q-2");
        assert_eq!(m.request_ids_minted(), 2);
        let summary = m.summary(&RegistrySnapshot::default());
        assert!(summary.contains("request ids q-1..q-2"), "{summary}");
    }

    #[test]
    fn endpoint_names_are_distinct() {
        let names: std::collections::HashSet<_> = Endpoint::ALL.iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), Endpoint::ALL.len());
    }
}
