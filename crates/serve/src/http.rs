//! A minimal HTTP/1.1 connection layer over `std::net` (no dependencies).
//!
//! The parsing core ([`parse_head`], [`decode_percent`], [`parse_query`])
//! is pure so it can be unit-tested without sockets; [`Conn`] wraps a
//! [`TcpStream`] with a residual buffer so pipelined keep-alive requests
//! are framed correctly. The socket is expected to carry a short read
//! timeout — the read loop treats `WouldBlock`/`TimedOut` as a tick,
//! polling the caller's abort callback so a server shutdown interrupts an
//! idle keep-alive wait.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;

/// Request heads larger than this are rejected outright (the server's JSON
/// API never needs long header blocks).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method as sent (`GET`, `PUT`, ...).
    pub method: String,
    /// Percent-decoded path (no query string).
    pub path: String,
    /// Decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers with lowercased names, in order of appearance.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// The first query parameter with this name, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The first header with this (case-insensitive) name, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let folded = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == folded)
            .map(|(_, v)| v.as_str())
    }
}

/// Why reading the next request off a connection failed.
#[derive(Debug)]
pub enum RecvError {
    /// The peer closed (or the idle keep-alive deadline passed, or the
    /// server is shutting down) with no request in flight — close quietly.
    Closed,
    /// The bytes on the wire were not a valid HTTP/1.x request.
    BadRequest(&'static str),
    /// The declared body length exceeds the configured cap; the caller
    /// should answer `413` and close.
    TooLarge {
        /// The configured cap in bytes.
        limit: usize,
        /// The declared `Content-Length`.
        actual: usize,
    },
    /// A socket error other than a timeout tick.
    Io(std::io::Error),
}

/// One client connection with its unconsumed-byte buffer.
pub struct Conn {
    stream: TcpStream,
    residual: Vec<u8>,
}

impl Conn {
    /// Wraps an accepted stream (the caller sets the read timeout).
    pub fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            residual: Vec::new(),
        }
    }

    /// Reads and parses the next request. `max_body` caps the declared
    /// `Content-Length`; `idle_ticks` bounds how many consecutive read
    /// timeouts are tolerated while *no* request bytes have arrived;
    /// `should_abort` is polled on every timeout tick with whether the
    /// connection is idle (no request bytes buffered yet) — callers can
    /// abort idle keep-alive waits eagerly (e.g. under queue pressure)
    /// while only aborting mid-request reads on a real shutdown.
    pub fn next_request(
        &mut self,
        max_body: usize,
        idle_ticks: u32,
        should_abort: &mut dyn FnMut(bool) -> bool,
    ) -> Result<Request, RecvError> {
        let head_end = loop {
            if let Some(pos) = find_head_end(&self.residual) {
                break pos;
            }
            if self.residual.len() > MAX_HEAD_BYTES {
                return Err(RecvError::BadRequest("request head too large"));
            }
            self.fill(idle_ticks, self.residual.is_empty(), should_abort)?;
        };
        let head_text = std::str::from_utf8(&self.residual[..head_end])
            .map_err(|_| RecvError::BadRequest("request head is not UTF-8"))?;
        let head = parse_head(head_text).map_err(RecvError::BadRequest)?;
        let body_len = match head.content_length {
            Some(n) if n > max_body => {
                return Err(RecvError::TooLarge {
                    limit: max_body,
                    actual: n,
                })
            }
            Some(n) => n,
            None => 0,
        };
        let body_start = head_end + 4;
        while self.residual.len() < body_start + body_len {
            // Mid-request stalls are never tolerated as idle.
            self.fill(idle_ticks, false, should_abort)?;
        }
        let body = self.residual[body_start..body_start + body_len].to_vec();
        self.residual.drain(..body_start + body_len);
        Ok(Request {
            method: head.method,
            path: head.path,
            query: head.query,
            headers: head.headers,
            body,
            keep_alive: head.keep_alive,
        })
    }

    /// Reads more bytes into the residual buffer, treating timeout ticks as
    /// abort-poll opportunities. `allow_idle` permits up to `idle_ticks`
    /// consecutive timeouts (the between-requests keep-alive wait).
    fn fill(
        &mut self,
        idle_ticks: u32,
        allow_idle: bool,
        should_abort: &mut dyn FnMut(bool) -> bool,
    ) -> Result<(), RecvError> {
        let mut chunk = [0u8; 4096];
        let mut ticks = 0u32;
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(if self.residual.is_empty() {
                        RecvError::Closed
                    } else {
                        RecvError::BadRequest("connection closed mid-request")
                    });
                }
                Ok(n) => {
                    self.residual.extend_from_slice(&chunk[..n]);
                    return Ok(());
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    if should_abort(allow_idle && self.residual.is_empty()) {
                        return Err(RecvError::Closed);
                    }
                    ticks += 1;
                    let budget = if allow_idle {
                        idle_ticks
                    } else {
                        idle_ticks / 2
                    };
                    if ticks >= budget.max(1) {
                        return Err(if allow_idle && self.residual.is_empty() {
                            RecvError::Closed
                        } else {
                            RecvError::BadRequest("timed out reading request")
                        });
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(RecvError::Io(e)),
            }
        }
    }

    /// Writes a response; `keep_alive` controls the `Connection` header.
    pub fn write_response(&mut self, response: &Response, keep_alive: bool) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            response.status,
            reason_phrase(response.status),
            response.content_type,
            response.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &response.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let mut head = head.into_bytes();
        head.extend_from_slice(&response.body);
        self.stream.write_all(&head)?;
        self.stream.flush()
    }
}

/// A response ready to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra response headers (lowercase names; `content-type`,
    /// `content-length` and `connection` are emitted separately).
    pub headers: Vec<(&'static str, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response from already-rendered text.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// Appends one extra response header (builder-style).
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.headers.push((name, value.into()));
        self
    }
}

/// The standard reason phrase for the status codes this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// The parsed request head (everything before the body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Head {
    /// Request method.
    pub method: String,
    /// Percent-decoded path.
    pub path: String,
    /// Decoded query parameters.
    pub query: Vec<(String, String)>,
    /// Headers with lowercased names.
    pub headers: Vec<(String, String)>,
    /// Declared `Content-Length`, if any.
    pub content_length: Option<usize>,
    /// Keep-alive per the HTTP version and `Connection` header.
    pub keep_alive: bool,
}

/// Index of the `\r\n\r\n` separator, if complete.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parses a request head (request line + header lines, CRLF-separated,
/// without the trailing blank line).
pub fn parse_head(text: &str) -> Result<Head, &'static str> {
    let mut lines = text.split("\r\n");
    let request_line = lines.next().ok_or("empty request")?;
    let mut parts = request_line.split(' ');
    let method = parts.next().filter(|m| !m.is_empty()).ok_or("no method")?;
    let target = parts.next().ok_or("no request target")?;
    let version = parts.next().ok_or("no HTTP version")?;
    if parts.next().is_some() {
        return Err("malformed request line");
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err("unsupported HTTP version"),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or("malformed header line")?;
        if name.is_empty() || name.contains(' ') {
            return Err("malformed header name");
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }
    // Only Content-Length framing is implemented; silently treating a
    // chunked body as length 0 would desync the connection (the chunk
    // bytes would parse as the next pipelined request).
    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err("transfer-encoding is not supported (use content-length)");
    }
    let mut content_length = None;
    for (_, v) in headers.iter().filter(|(k, _)| k == "content-length") {
        let n = v.parse::<usize>().map_err(|_| "bad content-length")?;
        // RFC 9112 §6.3: duplicates must agree, else the framing is
        // ambiguous and the request is rejected.
        if content_length.replace(n).is_some_and(|prev| prev != n) {
            return Err("conflicting content-length headers");
        }
    }
    let connection = headers
        .iter()
        .find(|(k, _)| k == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let keep_alive = match connection.as_deref() {
        Some("close") => false,
        Some("keep-alive") => true,
        _ => http11,
    };
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    if !raw_path.starts_with('/') {
        return Err("request target must be an absolute path");
    }
    let path = decode_percent(raw_path, false).ok_or("bad percent-encoding in path")?;
    let query = match raw_query {
        Some(q) => parse_query(q).ok_or("bad percent-encoding in query")?,
        None => Vec::new(),
    };
    Ok(Head {
        method: method.to_owned(),
        path,
        query,
        headers,
        content_length,
        keep_alive,
    })
}

/// Decodes `%XX` escapes (and `+` as space when `plus_is_space`); returns
/// `None` on malformed escapes or non-UTF-8 results.
pub fn decode_percent(s: &str, plus_is_space: bool) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hi = hex_value(*bytes.get(i + 1)?)?;
                let lo = hex_value(*bytes.get(i + 2)?)?;
                out.push(hi * 16 + lo);
                i += 3;
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

fn hex_value(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Parses `a=1&b=two` into decoded pairs (order preserved; a key without
/// `=` maps to the empty string).
pub fn parse_query(q: &str) -> Option<Vec<(String, String)>> {
    let mut out = Vec::new();
    for piece in q.split('&') {
        if piece.is_empty() {
            continue;
        }
        let (k, v) = piece.split_once('=').unwrap_or((piece, ""));
        out.push((decode_percent(k, true)?, decode_percent(v, true)?));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_put_with_query_and_body_length() {
        let head = parse_head(
            "PUT /schemas/po%201?algo=hybrid&explain=1 HTTP/1.1\r\n\
             Host: localhost\r\nContent-Length: 42\r\nContent-Type: application/xml",
        )
        .unwrap();
        assert_eq!(head.method, "PUT");
        assert_eq!(head.path, "/schemas/po 1");
        assert_eq!(
            head.query,
            vec![
                ("algo".to_owned(), "hybrid".to_owned()),
                ("explain".to_owned(), "1".to_owned()),
            ]
        );
        assert_eq!(head.content_length, Some(42));
        assert!(head.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(head.headers[0], ("host".to_owned(), "localhost".to_owned()));
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        let close = parse_head("GET / HTTP/1.1\r\nConnection: close").unwrap();
        assert!(!close.keep_alive);
        let old = parse_head("GET / HTTP/1.0").unwrap();
        assert!(!old.keep_alive, "HTTP/1.0 defaults to close");
        let old_ka = parse_head("GET / HTTP/1.0\r\nConnection: Keep-Alive").unwrap();
        assert!(old_ka.keep_alive);
    }

    #[test]
    fn rejects_malformed_heads() {
        assert!(parse_head("").is_err());
        assert!(parse_head("GET").is_err());
        assert!(parse_head("GET /").is_err());
        assert!(parse_head("GET / HTTP/2.0").is_err());
        assert!(parse_head("GET / HTTP/1.1 extra").is_err());
        assert!(parse_head("GET no-slash HTTP/1.1").is_err());
        assert!(parse_head("GET / HTTP/1.1\r\nno-colon-line").is_err());
        assert!(parse_head("GET / HTTP/1.1\r\nContent-Length: lots").is_err());
        assert!(parse_head("GET /%zz HTTP/1.1").is_err());
    }

    #[test]
    fn rejects_transfer_encoding() {
        assert!(parse_head("POST / HTTP/1.1\r\nTransfer-Encoding: chunked").is_err());
        // Even alongside Content-Length — the framing would be ambiguous.
        assert!(
            parse_head("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\nContent-Length: 3")
                .is_err()
        );
    }

    #[test]
    fn duplicate_content_length_must_agree() {
        let agree = parse_head("POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3");
        assert_eq!(agree.unwrap().content_length, Some(3));
        assert!(parse_head("POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4").is_err());
    }

    #[test]
    fn percent_decoding_round_trips() {
        assert_eq!(decode_percent("/a%2Fb", false).unwrap(), "/a/b");
        assert_eq!(decode_percent("a+b", true).unwrap(), "a b");
        assert_eq!(decode_percent("a+b", false).unwrap(), "a+b");
        assert_eq!(decode_percent("%C3%A9", false).unwrap(), "é");
        assert!(decode_percent("%4", false).is_none());
        assert!(decode_percent("%FF", false).is_none(), "invalid UTF-8");
    }

    #[test]
    fn query_parsing_handles_flags_and_empties() {
        assert_eq!(
            parse_query("a=1&flag&b=x%20y&&c=").unwrap(),
            vec![
                ("a".to_owned(), "1".to_owned()),
                ("flag".to_owned(), String::new()),
                ("b".to_owned(), "x y".to_owned()),
                ("c".to_owned(), String::new()),
            ]
        );
    }

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_head_end(b"partial\r\n"), None);
    }

    #[test]
    fn reason_phrases_cover_emitted_codes() {
        for code in [200, 201, 400, 404, 405, 413, 500] {
            assert_ne!(reason_phrase(code), "Unknown");
        }
        assert_eq!(reason_phrase(418), "Unknown");
    }
}
