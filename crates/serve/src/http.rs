//! The HTTP/1.1 parsing and serialization core (no dependencies, no I/O).
//!
//! Everything here is a pure function of bytes — `find_head_end`,
//! [`parse_head`], [`decode_percent`], [`parse_query`] on the way in,
//! [`Response::render`] on the way out — so it unit-tests without sockets.
//! The actual socket handling lives in `reactor`, which feeds received
//! bytes through these functions incrementally: it buffers until
//! `find_head_end` fires, parses the head once, then waits for
//! `Content-Length` body bytes. There is no blocking connection type —
//! the old worker-pool `Conn` was deleted when the server moved to the
//! epoll readiness loop.

/// Request heads larger than this are rejected outright (the server's JSON
/// API never needs long header blocks).
pub(crate) const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method as sent (`GET`, `PUT`, ...).
    pub method: String,
    /// Percent-decoded path (no query string).
    pub path: String,
    /// Decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers with lowercased names, in order of appearance.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// The first query parameter with this name, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The first header with this (case-insensitive) name, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let folded = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == folded)
            .map(|(_, v)| v.as_str())
    }
}

/// A response ready to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra response headers (lowercase names; `content-type`,
    /// `content-length` and `connection` are emitted separately).
    pub headers: Vec<(&'static str, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response from already-rendered text.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// Appends one extra response header (builder-style).
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.headers.push((name, value.into()));
        self
    }

    /// Serializes the full response (status line, framing headers, extra
    /// headers, body) exactly as the wire expects it; `keep_alive` controls
    /// the `Connection` header. Byte-for-byte the format the worker-pool
    /// server wrote, so socket-level tests see identical responses.
    pub fn render(&self, keep_alive: bool) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            reason_phrase(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }
}

/// The standard reason phrase for the status codes this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// The parsed request head (everything before the body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Head {
    /// Request method.
    pub method: String,
    /// Percent-decoded path.
    pub path: String,
    /// Decoded query parameters.
    pub query: Vec<(String, String)>,
    /// Headers with lowercased names.
    pub headers: Vec<(String, String)>,
    /// Declared `Content-Length`, if any.
    pub content_length: Option<usize>,
    /// Keep-alive per the HTTP version and `Connection` header.
    pub keep_alive: bool,
}

/// Index of the `\r\n\r\n` separator, if complete.
pub(crate) fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parses a request head (request line + header lines, CRLF-separated,
/// without the trailing blank line).
pub fn parse_head(text: &str) -> Result<Head, &'static str> {
    let mut lines = text.split("\r\n");
    let request_line = lines.next().ok_or("empty request")?;
    let mut parts = request_line.split(' ');
    let method = parts.next().filter(|m| !m.is_empty()).ok_or("no method")?;
    let target = parts.next().ok_or("no request target")?;
    let version = parts.next().ok_or("no HTTP version")?;
    if parts.next().is_some() {
        return Err("malformed request line");
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err("unsupported HTTP version"),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or("malformed header line")?;
        if name.is_empty() || name.contains(' ') {
            return Err("malformed header name");
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }
    // Only Content-Length framing is implemented; silently treating a
    // chunked body as length 0 would desync the connection (the chunk
    // bytes would parse as the next pipelined request).
    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err("transfer-encoding is not supported (use content-length)");
    }
    let mut content_length = None;
    for (_, v) in headers.iter().filter(|(k, _)| k == "content-length") {
        let n = v.parse::<usize>().map_err(|_| "bad content-length")?;
        // RFC 9112 §6.3: duplicates must agree, else the framing is
        // ambiguous and the request is rejected.
        if content_length.replace(n).is_some_and(|prev| prev != n) {
            return Err("conflicting content-length headers");
        }
    }
    let connection = headers
        .iter()
        .find(|(k, _)| k == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let keep_alive = match connection.as_deref() {
        Some("close") => false,
        Some("keep-alive") => true,
        _ => http11,
    };
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    if !raw_path.starts_with('/') {
        return Err("request target must be an absolute path");
    }
    let path = decode_percent(raw_path, false).ok_or("bad percent-encoding in path")?;
    let query = match raw_query {
        Some(q) => parse_query(q).ok_or("bad percent-encoding in query")?,
        None => Vec::new(),
    };
    Ok(Head {
        method: method.to_owned(),
        path,
        query,
        headers,
        content_length,
        keep_alive,
    })
}

/// Decodes `%XX` escapes (and `+` as space when `plus_is_space`); returns
/// `None` on malformed escapes or non-UTF-8 results.
pub fn decode_percent(s: &str, plus_is_space: bool) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hi = hex_value(*bytes.get(i + 1)?)?;
                let lo = hex_value(*bytes.get(i + 2)?)?;
                out.push(hi * 16 + lo);
                i += 3;
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

fn hex_value(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Parses `a=1&b=two` into decoded pairs (order preserved; a key without
/// `=` maps to the empty string).
pub fn parse_query(q: &str) -> Option<Vec<(String, String)>> {
    let mut out = Vec::new();
    for piece in q.split('&') {
        if piece.is_empty() {
            continue;
        }
        let (k, v) = piece.split_once('=').unwrap_or((piece, ""));
        out.push((decode_percent(k, true)?, decode_percent(v, true)?));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_put_with_query_and_body_length() {
        let head = parse_head(
            "PUT /schemas/po%201?algo=hybrid&explain=1 HTTP/1.1\r\n\
             Host: localhost\r\nContent-Length: 42\r\nContent-Type: application/xml",
        )
        .unwrap();
        assert_eq!(head.method, "PUT");
        assert_eq!(head.path, "/schemas/po 1");
        assert_eq!(
            head.query,
            vec![
                ("algo".to_owned(), "hybrid".to_owned()),
                ("explain".to_owned(), "1".to_owned()),
            ]
        );
        assert_eq!(head.content_length, Some(42));
        assert!(head.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(head.headers[0], ("host".to_owned(), "localhost".to_owned()));
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        let close = parse_head("GET / HTTP/1.1\r\nConnection: close").unwrap();
        assert!(!close.keep_alive);
        let old = parse_head("GET / HTTP/1.0").unwrap();
        assert!(!old.keep_alive, "HTTP/1.0 defaults to close");
        let old_ka = parse_head("GET / HTTP/1.0\r\nConnection: Keep-Alive").unwrap();
        assert!(old_ka.keep_alive);
    }

    #[test]
    fn rejects_malformed_heads() {
        assert!(parse_head("").is_err());
        assert!(parse_head("GET").is_err());
        assert!(parse_head("GET /").is_err());
        assert!(parse_head("GET / HTTP/2.0").is_err());
        assert!(parse_head("GET / HTTP/1.1 extra").is_err());
        assert!(parse_head("GET no-slash HTTP/1.1").is_err());
        assert!(parse_head("GET / HTTP/1.1\r\nno-colon-line").is_err());
        assert!(parse_head("GET / HTTP/1.1\r\nContent-Length: lots").is_err());
        assert!(parse_head("GET /%zz HTTP/1.1").is_err());
    }

    #[test]
    fn rejects_transfer_encoding() {
        assert!(parse_head("POST / HTTP/1.1\r\nTransfer-Encoding: chunked").is_err());
        // Even alongside Content-Length — the framing would be ambiguous.
        assert!(
            parse_head("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\nContent-Length: 3")
                .is_err()
        );
    }

    #[test]
    fn duplicate_content_length_must_agree() {
        let agree = parse_head("POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3");
        assert_eq!(agree.unwrap().content_length, Some(3));
        assert!(parse_head("POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4").is_err());
    }

    #[test]
    fn percent_decoding_round_trips() {
        assert_eq!(decode_percent("/a%2Fb", false).unwrap(), "/a/b");
        assert_eq!(decode_percent("a+b", true).unwrap(), "a b");
        assert_eq!(decode_percent("a+b", false).unwrap(), "a+b");
        assert_eq!(decode_percent("%C3%A9", false).unwrap(), "é");
        assert!(decode_percent("%4", false).is_none());
        assert!(decode_percent("%FF", false).is_none(), "invalid UTF-8");
    }

    #[test]
    fn query_parsing_handles_flags_and_empties() {
        assert_eq!(
            parse_query("a=1&flag&b=x%20y&&c=").unwrap(),
            vec![
                ("a".to_owned(), "1".to_owned()),
                ("flag".to_owned(), String::new()),
                ("b".to_owned(), "x y".to_owned()),
                ("c".to_owned(), String::new()),
            ]
        );
    }

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_head_end(b"partial\r\n"), None);
    }

    #[test]
    fn reason_phrases_cover_emitted_codes() {
        for code in [200, 201, 400, 404, 405, 408, 413, 429, 500, 503] {
            assert_ne!(reason_phrase(code), "Unknown");
        }
        assert_eq!(reason_phrase(418), "Unknown");
    }

    #[test]
    fn response_render_frames_and_keeps_header_order() {
        let wire = Response::json(200, r#"{"ok":true}"#.to_owned())
            .with_header("x-request-id", "q-7")
            .render(true);
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-type: application/json\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.contains("x-request-id: q-7\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"), "{text}");
        let close = Response::text(503, "busy".to_owned()).render(false);
        let close = String::from_utf8(close).unwrap();
        assert!(close.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(close.contains("connection: close\r\n"));
    }
}
