//! The concurrent schema registry: named compiled trees plus an LRU-capped
//! pool of prepared schemas, all sharing one [`MatchSession`].
//!
//! Registered trees are cheap (an [`Arc<SchemaTree>`]) and are kept for
//! every schema; the prepared artifacts ([`OwnedPreparedSchema`]) are the
//! expensive part, so only the `max_resident` most recently used stay
//! materialized. A lookup that misses residence re-prepares **outside** the
//! write lock — preparation is a pure function of the tree and the session,
//! so two racing re-preparations produce interchangeable values and the
//! loser is simply dropped.

use qmatch_core::session::{MatchSession, OwnedPreparedSchema};
use qmatch_xsd::{SchemaTree, TreeProfile};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::metrics::RegistrySnapshot;

/// Listing metadata for one registered schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaInfo {
    /// Registry name.
    pub name: String,
    /// Raw XSD bytes the schema was ingested from.
    pub source_bytes: u64,
    /// Compiled tree node count.
    pub nodes: usize,
    /// Compiled tree depth (edges from the root).
    pub max_depth: u32,
    /// Whether a prepared schema is currently resident.
    pub resident: bool,
}

/// The outcome of a registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Registered {
    /// Whether an existing schema of the same name was replaced.
    pub replaced: bool,
    /// Compiled tree node count.
    pub nodes: usize,
    /// Compiled tree depth.
    pub max_depth: u32,
}

struct Entry {
    tree: Arc<SchemaTree>,
    source_bytes: u64,
    nodes: usize,
    max_depth: u32,
}

struct Resident {
    prepared: Arc<OwnedPreparedSchema>,
    /// Logical access time (monotone ticks), updated on every hit. An
    /// atomic so hits need only the registry's read lock.
    last_used: AtomicU64,
}

#[derive(Default)]
struct Inner {
    entries: BTreeMap<String, Entry>,
    resident: HashMap<String, Resident>,
}

/// A thread-safe named-schema store over one shared [`MatchSession`].
pub struct Registry {
    session: MatchSession,
    inner: RwLock<Inner>,
    max_resident: usize,
    /// Logical clock for LRU ordering. Registry-level and atomic so a hit
    /// under the read lock can still claim a strictly newer timestamp than
    /// every earlier registration or hit.
    tick: AtomicU64,
    prepare_hits: AtomicU64,
    prepare_misses: AtomicU64,
    evictions: AtomicU64,
}

impl Registry {
    /// A registry keeping at most `max_resident` prepared schemas
    /// materialized (0 is treated as 1 — the schema being used must fit).
    pub fn new(session: MatchSession, max_resident: usize) -> Registry {
        Registry {
            session,
            inner: RwLock::new(Inner::default()),
            max_resident: max_resident.max(1),
            tick: AtomicU64::new(0),
            prepare_hits: AtomicU64::new(0),
            prepare_misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The shared match session (configuration, matcher, label cache).
    pub fn session(&self) -> &MatchSession {
        &self.session
    }

    /// Registers (or replaces) a schema under `name`. The tree is prepared
    /// eagerly so the first match does not pay preparation latency.
    pub fn register(&self, name: &str, tree: SchemaTree, source_bytes: u64) -> Registered {
        let profile = TreeProfile::of(&tree);
        let tree = Arc::new(tree);
        let prepared = Arc::new(self.session.prepare_owned(tree.clone()));
        let mut inner = self.inner.write().expect("registry lock");
        let tick = self.next_tick();
        let replaced = inner
            .entries
            .insert(
                name.to_owned(),
                Entry {
                    tree,
                    source_bytes,
                    nodes: profile.nodes,
                    max_depth: profile.max_depth,
                },
            )
            .is_some();
        inner.resident.insert(
            name.to_owned(),
            Resident {
                prepared,
                last_used: AtomicU64::new(tick),
            },
        );
        self.evict_over_cap(&mut inner, name);
        Registered {
            replaced,
            nodes: profile.nodes,
            max_depth: profile.max_depth,
        }
    }

    /// The next logical-clock value, strictly greater than every value
    /// handed out before.
    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Evicts least-recently-used residents until the cap holds, never
    /// evicting `keep` (the schema just touched). Ties (impossible under
    /// the strictly-increasing clock, but cheap to guard) break by name so
    /// eviction never depends on `HashMap` iteration order.
    fn evict_over_cap(&self, inner: &mut Inner, keep: &str) {
        while inner.resident.len() > self.max_resident {
            let victim = inner
                .resident
                .iter()
                .filter(|(name, _)| *name != keep)
                .min_by(|(an, a), (bn, b)| {
                    a.last_used
                        .load(Ordering::Relaxed)
                        .cmp(&b.last_used.load(Ordering::Relaxed))
                        .then_with(|| an.cmp(bn))
                })
                .map(|(name, _)| name.clone());
            match victim {
                Some(name) => {
                    inner.resident.remove(&name);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
    }

    /// The prepared schema for `name`, re-preparing (and re-inserting) it
    /// if the LRU cap evicted it. `None` when the name is unknown.
    pub fn prepared(&self, name: &str) -> Option<Arc<OwnedPreparedSchema>> {
        {
            let inner = self.inner.read().expect("registry lock");
            if !inner.entries.contains_key(name) {
                return None;
            }
            if let Some(resident) = inner.resident.get(name) {
                // Claim a strictly newer tick so this hit outranks every
                // earlier registration or hit in LRU order — the clock is
                // registry-level and atomic precisely so the hit path can
                // advance it under the read lock.
                resident
                    .last_used
                    .store(self.next_tick(), Ordering::Relaxed);
                self.prepare_hits.fetch_add(1, Ordering::Relaxed);
                return Some(resident.prepared.clone());
            }
        }
        self.prepare_misses.fetch_add(1, Ordering::Relaxed);
        let tree = {
            let inner = self.inner.read().expect("registry lock");
            inner.entries.get(name)?.tree.clone()
        };
        // Prepare outside any lock: pure work, possibly raced, harmless.
        let prepared = Arc::new(self.session.prepare_owned(tree));
        let mut inner = self.inner.write().expect("registry lock");
        if !inner.entries.contains_key(name) {
            return None; // deleted concurrently (future-proofing)
        }
        let tick = self.next_tick();
        let resident = inner
            .resident
            .entry(name.to_owned())
            .or_insert_with(|| Resident {
                prepared,
                last_used: AtomicU64::new(tick),
            });
        resident.last_used.store(tick, Ordering::Relaxed);
        let out = resident.prepared.clone();
        self.evict_over_cap(&mut inner, name);
        Some(out)
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.inner
            .read()
            .expect("registry lock")
            .entries
            .contains_key(name)
    }

    /// Number of registered schemas.
    pub fn len(&self) -> usize {
        self.inner.read().expect("registry lock").entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All registered names in sorted order.
    pub fn names(&self) -> Vec<String> {
        self.inner
            .read()
            .expect("registry lock")
            .entries
            .keys()
            .cloned()
            .collect()
    }

    /// Listing metadata for every schema, sorted by name.
    pub fn list(&self) -> Vec<SchemaInfo> {
        let inner = self.inner.read().expect("registry lock");
        inner
            .entries
            .iter()
            .map(|(name, entry)| SchemaInfo {
                name: name.clone(),
                source_bytes: entry.source_bytes,
                nodes: entry.nodes,
                max_depth: entry.max_depth,
                resident: inner.resident.contains_key(name),
            })
            .collect()
    }

    /// A counters snapshot for metrics rendering.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let (schemas, resident) = {
            let inner = self.inner.read().expect("registry lock");
            (inner.entries.len() as u64, inner.resident.len() as u64)
        };
        let labels = self.session.cache_stats();
        RegistrySnapshot {
            schemas,
            resident,
            prepare_hits: self.prepare_hits.load(Ordering::Relaxed),
            prepare_misses: self.prepare_misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            label_hits: labels.hits,
            label_misses: labels.misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmatch_core::model::MatchConfig;

    fn tree(root: &str) -> SchemaTree {
        SchemaTree::from_labels(root, &[(root, None), ("OrderNo", Some(0))])
    }

    fn registry(max_resident: usize) -> Registry {
        Registry::new(MatchSession::new(MatchConfig::default()), max_resident)
    }

    #[test]
    fn register_list_and_replace() {
        let r = registry(8);
        let first = r.register("po", tree("PO"), 100);
        assert!(!first.replaced);
        assert_eq!(first.nodes, 2);
        let second = r.register("po", tree("PurchaseOrder"), 120);
        assert!(second.replaced);
        assert_eq!(r.len(), 1);
        let infos = r.list();
        assert_eq!(infos.len(), 1);
        assert_eq!(infos[0].name, "po");
        assert_eq!(infos[0].source_bytes, 120);
        assert!(infos[0].resident);
        assert!(r.contains("po"));
        assert!(!r.contains("order"));
        assert_eq!(r.prepared("missing").map(|_| ()), None);
    }

    #[test]
    fn lru_evicts_and_reprepares_on_demand() {
        let r = registry(2);
        r.register("a", tree("A"), 1);
        r.register("b", tree("B"), 1);
        r.register("c", tree("C"), 1); // evicts "a" (least recently used)
        let resident: Vec<_> = r.list().into_iter().filter(|i| i.resident).collect();
        assert_eq!(resident.len(), 2);
        assert!(!r.list().iter().any(|i| i.name == "a" && i.resident));
        assert_eq!(r.snapshot().evictions, 1);
        // "a" is still registered; using it re-prepares and evicts another.
        let prepared = r.prepared("a").expect("still registered");
        assert_eq!(prepared.prepared().tree().name(), "A");
        assert_eq!(r.snapshot().prepare_misses, 1);
        assert_eq!(r.snapshot().resident, 2);
    }

    #[test]
    fn hits_update_recency() {
        let r = registry(2);
        r.register("a", tree("A"), 1);
        r.register("b", tree("B"), 1);
        r.prepared("a").unwrap(); // touch "a" so "b" is now the LRU victim
        r.register("c", tree("C"), 1);
        let resident: Vec<_> = r
            .list()
            .into_iter()
            .filter(|i| i.resident)
            .map(|i| i.name)
            .collect();
        assert_eq!(resident, ["a", "c"]);
        assert!(r.snapshot().prepare_hits >= 1);
    }

    #[test]
    fn concurrent_lookups_agree() {
        let r = Arc::new(registry(1));
        r.register("a", tree("A"), 1);
        r.register("b", tree("B"), 1); // "a" evicted; lookups re-prepare
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for _ in 0..10 {
                        let pa = r.prepared("a").unwrap();
                        let pb = r.prepared("b").unwrap();
                        let outcome = r.session().match_pair(pa.prepared(), pb.prepared());
                        assert!(outcome.total_qom.is_finite());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("lookup thread");
        }
        assert_eq!(r.snapshot().schemas, 2);
    }
}
