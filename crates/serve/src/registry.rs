//! The sharded schema registry: a thin facade over per-core
//! [`Shard`]s, each owning one hash partition of the name space.
//!
//! Ownership is static — `shard_of(name) = fnv1a(name) % shards` — so
//! every schema has exactly one home: the shard holding its compiled tree,
//! its raw source bytes (for WAL compaction dumps), and its prepared
//! artifact in that shard's LRU pool. Facade reads (`list`, `names`,
//! `snapshot`) merge the partitions; writes route to the owner. A
//! single-shard registry ([`Registry::single`]) behaves exactly like the
//! old monolithic one and is what unit tests use.

use qmatch_core::session::{CacheStats, MatchSession, OwnedPreparedSchema};
use qmatch_xsd::SchemaTree;
use std::sync::Arc;

use crate::metrics::RegistrySnapshot;
use crate::shard::{fnv1a, Shard};

/// Listing metadata for one registered schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaInfo {
    /// Registry name.
    pub name: String,
    /// Raw XSD bytes the schema was ingested from.
    pub source_bytes: u64,
    /// Compiled tree node count.
    pub nodes: usize,
    /// Compiled tree depth (edges from the root).
    pub max_depth: u32,
    /// Whether a prepared schema is currently resident on the owner shard.
    pub resident: bool,
}

/// The outcome of a registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Registered {
    /// Whether an existing schema of the same name was replaced.
    pub replaced: bool,
    /// Compiled tree node count.
    pub nodes: usize,
    /// Compiled tree depth.
    pub max_depth: u32,
}

/// A named-schema store partitioned across shared-nothing [`Shard`]s.
pub struct Registry {
    shards: Vec<Arc<Shard>>,
}

impl Registry {
    /// A registry over an already-built shard vector (the server builds
    /// one shard per worker thread, each with its own session).
    pub fn new(shards: Vec<Arc<Shard>>) -> Registry {
        assert!(!shards.is_empty(), "a registry needs at least one shard");
        Registry { shards }
    }

    /// A single-shard registry — the old monolithic behavior, used by unit
    /// tests and embedders that do not need the sharded server.
    pub fn single(session: MatchSession, max_resident: usize) -> Registry {
        Registry::new(vec![Arc::new(Shard::new(0, session, max_resident))])
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard at `index`.
    pub fn shard(&self, index: usize) -> &Arc<Shard> {
        &self.shards[index]
    }

    /// All shards, in index order.
    pub fn shards(&self) -> &[Arc<Shard>] {
        &self.shards
    }

    /// Which shard owns `name`.
    pub fn shard_of(&self, name: &str) -> usize {
        (fnv1a(name.as_bytes()) % self.shards.len() as u64) as usize
    }

    /// The shard owning `name`.
    pub fn owner(&self, name: &str) -> &Arc<Shard> {
        &self.shards[self.shard_of(name)]
    }

    /// A session for configuration lookups (config is identical across
    /// shards; only per-shard caches differ).
    pub fn session(&self) -> &MatchSession {
        self.shards[0].session()
    }

    /// Registers (or replaces) a schema on its owner shard.
    pub fn register(&self, name: &str, tree: SchemaTree, source: &[u8]) -> Registered {
        self.owner(name).register(name, tree, source)
    }

    /// Removes a schema from its owner shard (tree, prepared artifact, and
    /// index entry). Returns whether the name was registered.
    pub fn remove(&self, name: &str) -> bool {
        self.owner(name).remove(name)
    }

    /// The prepared schema for `name` from its owner shard (re-preparing
    /// if evicted). `None` when the name is unknown.
    pub fn prepared(&self, name: &str) -> Option<Arc<OwnedPreparedSchema>> {
        self.owner(name).prepared(name)
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.owner(name).contains(name)
    }

    /// Number of registered schemas across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All registered names in sorted order (merged across shards).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.shards.iter().flat_map(|s| s.names()).collect();
        names.sort();
        names
    }

    /// Listing metadata for every schema, sorted by name.
    pub fn list(&self) -> Vec<SchemaInfo> {
        let mut infos: Vec<SchemaInfo> = self.shards.iter().flat_map(|s| s.list()).collect();
        infos.sort_by(|a, b| a.name.cmp(&b.name));
        infos
    }

    /// Label-cache statistics summed across every shard's session.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats { hits: 0, misses: 0 };
        for shard in &self.shards {
            let stats = shard.session().cache_stats();
            total.hits += stats.hits;
            total.misses += stats.misses;
        }
        total
    }

    /// A counters snapshot summed across shards, for metrics rendering.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut total = RegistrySnapshot::default();
        for shard in &self.shards {
            let s = shard.snapshot();
            total.schemas += s.schemas;
            total.resident += s.resident;
            total.prepare_hits += s.prepare_hits;
            total.prepare_misses += s.prepare_misses;
            total.evictions += s.evictions;
            total.label_hits += s.label_hits;
            total.label_misses += s.label_misses;
            total.index_candidates += s.index_candidates;
            total.index_filtered += s.index_filtered;
            total.evolve_incremental += s.evolve_incremental;
            total.evolve_full += s.evolve_full;
            total.deletes += s.deletes;
        }
        total
    }

    /// `(name, raw source bytes)` for every registered schema, sorted by
    /// name — the WAL compaction dump.
    pub fn dump(&self) -> Vec<(String, Arc<[u8]>)> {
        let mut out = Vec::with_capacity(self.len());
        for shard in &self.shards {
            shard.dump_into(&mut out);
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmatch_core::model::MatchConfig;

    fn tree(root: &str) -> SchemaTree {
        SchemaTree::from_labels(root, &[(root, None), ("OrderNo", Some(0))])
    }

    fn registry(max_resident: usize) -> Registry {
        Registry::single(MatchSession::new(MatchConfig::default()), max_resident)
    }

    fn sharded(shards: usize, max_resident: usize) -> Registry {
        Registry::new(
            (0..shards)
                .map(|i| {
                    Arc::new(Shard::new(
                        i,
                        MatchSession::new(MatchConfig::default()),
                        max_resident,
                    ))
                })
                .collect(),
        )
    }

    #[test]
    fn register_list_and_replace() {
        let r = registry(8);
        let first = r.register("po", tree("PO"), &[0u8; 100]);
        assert!(!first.replaced);
        assert_eq!(first.nodes, 2);
        let second = r.register("po", tree("PurchaseOrder"), &[0u8; 120]);
        assert!(second.replaced);
        assert_eq!(r.len(), 1);
        let infos = r.list();
        assert_eq!(infos.len(), 1);
        assert_eq!(infos[0].name, "po");
        assert_eq!(infos[0].source_bytes, 120);
        assert!(infos[0].resident);
        assert!(r.contains("po"));
        assert!(!r.contains("order"));
        assert_eq!(r.prepared("missing").map(|_| ()), None);
    }

    #[test]
    fn lru_evicts_and_reprepares_on_demand() {
        let r = registry(2);
        r.register("a", tree("A"), b"x");
        r.register("b", tree("B"), b"x");
        r.register("c", tree("C"), b"x"); // evicts "a" (least recently used)
        let resident: Vec<_> = r.list().into_iter().filter(|i| i.resident).collect();
        assert_eq!(resident.len(), 2);
        assert!(!r.list().iter().any(|i| i.name == "a" && i.resident));
        assert_eq!(r.snapshot().evictions, 1);
        // "a" is still registered; using it re-prepares and evicts another.
        let prepared = r.prepared("a").expect("still registered");
        assert_eq!(prepared.prepared().tree().name(), "A");
        assert_eq!(r.snapshot().prepare_misses, 1);
        assert_eq!(r.snapshot().resident, 2);
    }

    #[test]
    fn hits_update_recency() {
        let r = registry(2);
        r.register("a", tree("A"), b"x");
        r.register("b", tree("B"), b"x");
        r.prepared("a").unwrap(); // touch "a" so "b" is now the LRU victim
        r.register("c", tree("C"), b"x");
        let resident: Vec<_> = r
            .list()
            .into_iter()
            .filter(|i| i.resident)
            .map(|i| i.name)
            .collect();
        assert_eq!(resident, ["a", "c"]);
        assert!(r.snapshot().prepare_hits >= 1);
    }

    #[test]
    fn concurrent_lookups_agree() {
        let r = Arc::new(registry(1));
        r.register("a", tree("A"), b"x");
        r.register("b", tree("B"), b"x"); // "a" evicted; lookups re-prepare
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for _ in 0..10 {
                        let pa = r.prepared("a").unwrap();
                        let pb = r.prepared("b").unwrap();
                        let outcome = r.session().match_pair(pa.prepared(), pb.prepared());
                        assert!(outcome.total_qom.is_finite());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("lookup thread");
        }
        assert_eq!(r.snapshot().schemas, 2);
    }

    #[test]
    fn sharded_ownership_routes_and_merges() {
        let r = sharded(4, 8);
        let names = ["po1", "po2", "article", "book", "dcmd_item", "dcmd_ord"];
        for name in names {
            r.register(name, tree(name), name.as_bytes());
            // The owner shard holds it; every other shard does not.
            let owner = r.shard_of(name);
            for (i, shard) in r.shards().iter().enumerate() {
                assert_eq!(shard.contains(name), i == owner, "{name} on shard {i}");
            }
        }
        assert_eq!(r.len(), names.len());
        let mut sorted: Vec<&str> = names.to_vec();
        sorted.sort();
        assert_eq!(r.names(), sorted);
        assert_eq!(
            r.list().iter().map(|i| i.name.as_str()).collect::<Vec<_>>(),
            sorted
        );
        let dump = r.dump();
        assert_eq!(
            dump.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
            sorted,
            "dump is name-sorted for deterministic snapshots"
        );
        assert_eq!(r.snapshot().schemas, names.len() as u64);
        // Cross-shard prepared lookups work through the facade.
        for name in names {
            assert!(r.prepared(name).is_some(), "{name}");
        }
    }
}
