//! The server loop: a non-blocking accept loop feeding a fixed worker
//! thread pool, with cooperative shutdown.
//!
//! Shutdown has two triggers — [`ShutdownHandle::shutdown`] (used by tests
//! and embedders) and a delivered `SIGINT`/`SIGTERM` (registered by
//! [`install_signal_handlers`], used by `qmatch serve`). Both set flags the
//! accept loop and the per-connection read loops poll, so an idle server
//! stops within one poll interval and in-flight requests finish first.
//!
//! Each connection pins its worker thread for as long as it is being
//! served, including keep-alive waits between requests. To keep that from
//! starving newly accepted connections when every worker holds an idle
//! keep-alive client, workers poll a shared pending-connection counter:
//! while connections are queued, idle keep-alive waits are cut short and
//! responses are sent with `Connection: close` — only *idle* waits, so
//! requests in flight are never dropped. A client that keeps issuing
//! requests can still occupy a worker for up to `IDLE_TICKS` per wait
//! when the queue is empty; that is the accepted trade-off of a fixed
//! thread-per-connection pool.

use crate::handlers;
use crate::http::{Conn, RecvError};
use crate::metrics::{Endpoint, Metrics, PhaseSink};
use crate::registry::Registry;
use qmatch_core::model::MatchConfig;
use qmatch_core::trace::{Phase, Span};
use qmatch_core::MatchSession;
use qmatch_lexicon::NameMatcher;
use qmatch_xsd::IngestLimits;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long one blocking read waits before ticking the shutdown poll.
const READ_TICK: Duration = Duration::from_millis(100);
/// Consecutive idle ticks tolerated between keep-alive requests (~10 s).
const IDLE_TICKS: u32 = 100;
/// Accept-loop sleep when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:8080` (port 0 picks an ephemeral
    /// port — used by the tests).
    pub addr: String,
    /// Worker thread count; 0 means the machine's available parallelism.
    pub threads: usize,
    /// LRU cap on resident prepared schemas.
    pub max_resident: usize,
    /// Ingestion limits applied to `PUT /schemas/{name}` bodies.
    pub limits: IngestLimits,
    /// Match configuration for the shared session.
    pub config: MatchConfig,
    /// Optional custom name matcher (extended thesaurus).
    pub matcher: Option<NameMatcher>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8080".to_owned(),
            threads: 0,
            max_resident: 64,
            limits: IngestLimits::default(),
            config: MatchConfig::default(),
            matcher: None,
        }
    }
}

/// A handle that asks a running [`Server`] to stop accepting and drain.
#[derive(Debug, Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Requests shutdown (idempotent).
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A bound (not yet running) match server.
pub struct Server {
    listener: TcpListener,
    registry: Arc<Registry>,
    metrics: Arc<Metrics>,
    limits: IngestLimits,
    threads: usize,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listen socket and builds the shared state; the server does
    /// not serve until [`Server::run`].
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let metrics = Arc::new(Metrics::new());
        let mut session = match config.matcher {
            Some(matcher) => MatchSession::with_matcher(config.config, matcher),
            None => MatchSession::new(config.config),
        };
        // Every pipeline span the session emits (prepares, label-matrix
        // builds, wavefront passes) lands in the qmatch_phase_* series of
        // GET /metrics. Wired before the session is shared, as the sink API
        // requires.
        session.set_trace_sink(Arc::new(PhaseSink::new(metrics.clone())));
        Ok(Server {
            listener,
            registry: Arc::new(Registry::new(session, config.max_resident)),
            metrics,
            limits: config.limits,
            threads: config.threads,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared schema registry (embedders may pre-register schemas).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The shared request counters.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// A handle that stops the accept loop from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(self.shutdown.clone())
    }

    /// Runs until shutdown is requested (via handle or signal), then drains
    /// the worker pool and returns the human-readable activity summary.
    pub fn run(self) -> std::io::Result<String> {
        self.listener.set_nonblocking(true)?;
        let (tx, rx) = channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        // Connections accepted but not yet picked up by a worker; idle
        // keep-alive waits are cut short while this is non-zero.
        let pending = Arc::new(AtomicUsize::new(0));
        let threads = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
        } else {
            self.threads
        };
        let workers: Vec<_> = (0..threads)
            .map(|i| {
                let rx = rx.clone();
                let registry = self.registry.clone();
                let metrics = self.metrics.clone();
                let limits = self.limits;
                let shutdown = self.shutdown.clone();
                let pending = pending.clone();
                std::thread::Builder::new()
                    .name(format!("qmatch-serve-{i}"))
                    .spawn(move || {
                        worker_loop(&rx, &registry, &metrics, &limits, &shutdown, &pending)
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        while !self.should_stop() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nodelay(true);
                    pending.fetch_add(1, Ordering::Relaxed);
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Closing the channel ends every worker after its current queue
        // item; connections in flight observe the shutdown flag.
        self.shutdown.store(true, Ordering::Relaxed);
        drop(tx);
        for worker in workers {
            let _ = worker.join();
        }
        Ok(self.metrics.summary(&self.registry.snapshot()))
    }

    fn should_stop(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed) || signal_received()
    }
}

/// One worker: pull accepted connections off the shared queue until the
/// accept loop hangs up.
fn worker_loop(
    rx: &Arc<Mutex<Receiver<TcpStream>>>,
    registry: &Registry,
    metrics: &Metrics,
    limits: &IngestLimits,
    shutdown: &AtomicBool,
    pending: &AtomicUsize,
) {
    loop {
        let stream = {
            let queue = rx.lock().expect("worker queue lock");
            queue.recv()
        };
        match stream {
            Ok(stream) => {
                pending.fetch_sub(1, Ordering::Relaxed);
                serve_conn(stream, registry, metrics, limits, shutdown, pending);
            }
            Err(_) => break,
        }
    }
}

/// Serves one connection: keep-alive request loop with shutdown polling.
/// Idle keep-alive waits additionally abort (and responses switch to
/// `Connection: close`) while accepted connections are queued, so one slow
/// client cannot pin this worker while others wait.
fn serve_conn(
    stream: TcpStream,
    registry: &Registry,
    metrics: &Metrics,
    limits: &IngestLimits,
    shutdown: &AtomicBool,
    pending: &AtomicUsize,
) {
    if stream.set_read_timeout(Some(READ_TICK)).is_err() {
        return;
    }
    let mut conn = Conn::new(stream);
    loop {
        let mut abort = |idle: bool| {
            shutdown.load(Ordering::Relaxed)
                || signal_received()
                || (idle && pending.load(Ordering::Relaxed) > 0)
        };
        match conn.next_request(limits.max_input_bytes, IDLE_TICKS, &mut abort) {
            Ok(request) => {
                // Echo a client-supplied X-Request-Id, else mint q-N; the
                // id rides back on the response so clients can correlate
                // it with server-side logs and metrics.
                let request_id = request
                    .header("x-request-id")
                    .map(str::to_owned)
                    .unwrap_or_else(|| metrics.next_request_id());
                let start = Instant::now();
                let (endpoint, response) = handlers::handle(&request, registry, metrics, limits);
                let elapsed = start.elapsed();
                let micros = elapsed.as_micros() as u64;
                metrics.record(endpoint, response.status, micros);
                metrics.record_phase(&Span {
                    rows: 1,
                    cells: request.body.len() as u64,
                    wall: elapsed,
                    ..Span::empty(Phase::Request)
                });
                let response = response.with_header("x-request-id", request_id);
                // Finish the in-flight response, but do not wait for more
                // requests once shutdown is in progress or the queue is
                // backed up (the post-response wait would be idle time).
                let keep = request.keep_alive && !abort(true);
                if conn.write_response(&response, keep).is_err() || !keep {
                    break;
                }
            }
            Err(RecvError::Closed) => break,
            Err(RecvError::BadRequest(detail)) => {
                let response = handlers::error(400, "bad_request", detail);
                metrics.record(Endpoint::Other, 400, 0);
                let _ = conn.write_response(&response, false);
                break;
            }
            Err(RecvError::TooLarge { limit, actual }) => {
                metrics.add_rejected_by_limits();
                let response = handlers::error(
                    413,
                    "limit_exceeded",
                    format!(
                        "request body of {actual} bytes exceeds the \
                         max_input_bytes ingestion limit ({limit})"
                    ),
                );
                metrics.record(Endpoint::Other, 413, 0);
                let _ = conn.write_response(&response, false);
                break;
            }
            Err(RecvError::Io(_)) => break,
        }
    }
}

#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SIGNAL_RECEIVED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // Only an async-signal-safe atomic store; the serving threads poll.
        SIGNAL_RECEIVED.store(true, Ordering::Relaxed);
    }

    extern "C" {
        // POSIX `signal(2)`; enough for a set-a-flag handler without
        // pulling in a bindings crate.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// Registers `SIGINT` and `SIGTERM` to request a graceful shutdown.
    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    /// Whether a registered signal has been delivered.
    pub fn received() -> bool {
        SIGNAL_RECEIVED.load(Ordering::Relaxed)
    }
}

/// Registers `SIGINT`/`SIGTERM` handlers that request a graceful shutdown
/// (no-op on non-Unix platforms).
pub fn install_signal_handlers() {
    #[cfg(unix)]
    signals::install();
}

/// Whether a shutdown signal has been delivered since
/// [`install_signal_handlers`] (always `false` on non-Unix platforms).
pub fn signal_received() -> bool {
    #[cfg(unix)]
    {
        signals::received()
    }
    #[cfg(not(unix))]
    {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_picks_an_ephemeral_port_and_shuts_down() {
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 2,
            ..ServerConfig::default()
        })
        .expect("bind");
        let addr = server.local_addr().expect("local addr");
        assert_ne!(addr.port(), 0);
        let handle = server.shutdown_handle();
        assert!(!handle.is_shutdown());
        let runner = std::thread::spawn(move || server.run().expect("run"));
        handle.shutdown();
        assert!(handle.is_shutdown());
        let summary = runner.join().expect("server thread");
        assert!(summary.contains("served 0 request(s)"), "{summary}");
    }

    #[test]
    fn default_config_is_sensible() {
        let config = ServerConfig::default();
        assert_eq!(config.addr, "127.0.0.1:8080");
        assert_eq!(config.threads, 0, "0 = auto");
        assert_eq!(config.max_resident, 64);
        assert!(config.matcher.is_none());
    }
}
