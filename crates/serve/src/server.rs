//! Server assembly: bind, shard construction, durability replay, and the
//! reactor + worker-pool lifecycle.
//!
//! The serving topology is one epoll reactor thread (`reactor::run`)
//! owning every socket, plus one worker thread per registry shard
//! (`qmatch-shard-{i}`, running [`crate::shard::run_worker`]) executing
//! queued match work. [`Server::bind`] builds the shard-per-core registry
//! — each shard gets its own [`MatchSession`] wired into the phase
//! metrics — and, when `data_dir` is set, opens the WAL/snapshot store
//! and replays it so a restart comes back with every schema that was
//! `PUT` before the crash.
//!
//! Shutdown has two triggers — [`ShutdownHandle::shutdown`] (tests and
//! embedders) and a delivered `SIGINT`/`SIGTERM` (registered by
//! [`install_signal_handlers`], used by `qmatch serve`). The reactor
//! polls both, stops accepting, drains in-flight work, and returns; the
//! job channels close and the workers exit.

use crate::handlers::ServeState;
use crate::metrics::{Metrics, PhaseSink};
use crate::persist::Persist;
use crate::reactor::{self, Timing, WakeFd};
use crate::registry::Registry;
use crate::shard::{run_worker, Completion, CompletionSender, Job, Shard};
use qmatch_core::model::MatchConfig;
use qmatch_core::MatchSession;
use qmatch_lexicon::NameMatcher;
use qmatch_xsd::{parse_schema_with_limits, IngestLimits, SchemaTree};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::Duration;

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:8080` (port 0 picks an ephemeral
    /// port — used by the tests).
    pub addr: String,
    /// Shard/worker thread count; 0 means the machine's available
    /// parallelism.
    pub threads: usize,
    /// LRU cap on resident prepared schemas, per shard.
    pub max_resident: usize,
    /// Ingestion limits applied to `PUT /schemas/{name}` bodies.
    pub limits: IngestLimits,
    /// Match configuration for every shard session (including the default
    /// matrix precision the `precision=` query parameter overrides).
    pub config: MatchConfig,
    /// Optional custom name matcher (extended thesaurus), cloned per
    /// shard.
    pub matcher: Option<NameMatcher>,
    /// Max queued-or-executing match jobs before requests answer `429`.
    pub queue_depth: usize,
    /// Per-request deadline budget; jobs that expire in the queue answer
    /// `503`.
    pub deadline: Duration,
    /// First byte → complete head budget (kills slow-loris clients).
    pub header_deadline: Duration,
    /// Complete head → complete body budget.
    pub body_deadline: Duration,
    /// Idle budget: accept → first byte, and between keep-alive requests.
    pub idle_deadline: Duration,
    /// Registry durability directory (WAL + snapshots). `None` serves
    /// in-memory only.
    pub data_dir: Option<PathBuf>,
    /// WAL payload size that triggers compaction into a snapshot.
    pub snapshot_bytes: u64,
    /// WAL group-commit window (`--fsync-batch-ms`): zero fsyncs every
    /// accepted write before its response; a positive window fsyncs at
    /// most once per window.
    pub fsync_batch: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8080".to_owned(),
            threads: 0,
            max_resident: 64,
            limits: IngestLimits::default(),
            config: MatchConfig::default(),
            matcher: None,
            queue_depth: 512,
            deadline: Duration::from_secs(30),
            header_deadline: Duration::from_secs(5),
            body_deadline: Duration::from_secs(10),
            idle_deadline: Duration::from_secs(10),
            data_dir: None,
            snapshot_bytes: 4 * 1024 * 1024,
            fsync_batch: Duration::ZERO,
        }
    }
}

/// A handle that asks a running [`Server`] to stop accepting and drain.
#[derive(Debug, Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Requests shutdown (idempotent).
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A bound (not yet running) match server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
    shutdown: Arc<AtomicBool>,
    timing: Timing,
}

impl Server {
    /// Binds the listen socket, builds the sharded registry, and — when
    /// `data_dir` is set — replays the WAL/snapshot store; the server does
    /// not serve until [`Server::run`].
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let metrics = Arc::new(Metrics::new());
        let threads = if config.threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
        } else {
            config.threads
        };
        let shards: Vec<Arc<Shard>> = (0..threads)
            .map(|i| {
                let mut session = match &config.matcher {
                    Some(matcher) => MatchSession::with_matcher(config.config, matcher.clone()),
                    None => MatchSession::new(config.config),
                };
                // Every pipeline span the session emits (prepares,
                // label-matrix builds, wavefront passes) lands in the
                // qmatch_phase_* series of GET /metrics. Wired before the
                // session is shared, as the sink API requires.
                session.set_trace_sink(Arc::new(PhaseSink::new(metrics.clone())));
                Arc::new(Shard::new(i, session, config.max_resident))
            })
            .collect();
        let registry = Registry::new(shards);
        let persist = match &config.data_dir {
            Some(dir) => {
                let (persist, replayed) =
                    Persist::open_with(dir, config.snapshot_bytes, config.fsync_batch)?;
                // Re-register every durable schema through the same parse +
                // compile path a PUT takes, so a restarted server serves
                // byte-identical listings and rankings. Bodies that no
                // longer pass the (possibly tightened) limits are skipped,
                // not fatal.
                for (name, body) in &replayed.schemas {
                    let Ok(text) = std::str::from_utf8(body) else {
                        continue;
                    };
                    let tree = parse_schema_with_limits(text, &config.limits).and_then(|schema| {
                        SchemaTree::compile_with_limits(&schema, &config.limits)
                    });
                    if let Ok(tree) = tree {
                        registry.register(name, tree, body);
                    }
                }
                Some(persist)
            }
            None => None,
        };
        Ok(Server {
            listener,
            state: Arc::new(ServeState {
                registry,
                metrics,
                limits: config.limits,
                persist,
            }),
            shutdown: Arc::new(AtomicBool::new(false)),
            timing: Timing {
                header: config.header_deadline,
                body: config.body_deadline,
                idle: config.idle_deadline,
                request: config.deadline,
                queue_depth: config.queue_depth,
            },
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The sharded schema registry (embedders may pre-register schemas).
    pub fn registry(&self) -> &Registry {
        &self.state.registry
    }

    /// The shared request counters.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.state.metrics
    }

    /// A handle that stops the reactor from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(self.shutdown.clone())
    }

    /// Runs until shutdown is requested (via handle or signal), then
    /// drains the shard workers and returns the human-readable activity
    /// summary.
    pub fn run(self) -> std::io::Result<String> {
        let shards = self.state.registry.shard_count();
        let wake = Arc::new(WakeFd::new()?);
        let (done_tx, done_rx) = channel::<Completion>();
        let mut senders = Vec::with_capacity(shards);
        let workers: Vec<_> = (0..shards)
            .map(|i| {
                let (tx, rx) = channel::<Job>();
                senders.push(tx);
                let state = self.state.clone();
                let done = CompletionSender::new(done_tx.clone(), wake.clone());
                std::thread::Builder::new()
                    .name(format!("qmatch-shard-{i}"))
                    .spawn(move || run_worker(&state, i, rx, done))
                    .expect("spawn shard worker")
            })
            .collect();
        drop(done_tx);
        let result = reactor::run(
            self.listener,
            self.state.clone(),
            senders,
            done_rx,
            wake,
            self.shutdown.clone(),
            self.timing,
        );
        // The reactor dropped the job senders on return; each worker's
        // recv() fails and its loop exits.
        for worker in workers {
            let _ = worker.join();
        }
        result?;
        Ok(self.state.metrics.summary(&self.state.registry.snapshot()))
    }
}

#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SIGNAL_RECEIVED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // Only an async-signal-safe atomic store; the serving threads poll.
        SIGNAL_RECEIVED.store(true, Ordering::Relaxed);
    }

    extern "C" {
        // POSIX `signal(2)`; enough for a set-a-flag handler without
        // pulling in a bindings crate.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// Registers `SIGINT` and `SIGTERM` to request a graceful shutdown.
    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    /// Whether a registered signal has been delivered.
    pub fn received() -> bool {
        SIGNAL_RECEIVED.load(Ordering::Relaxed)
    }
}

/// Registers `SIGINT`/`SIGTERM` handlers that request a graceful shutdown
/// (no-op on non-Unix platforms).
pub fn install_signal_handlers() {
    #[cfg(unix)]
    signals::install();
}

/// Whether a shutdown signal has been delivered since
/// [`install_signal_handlers`] (always `false` on non-Unix platforms).
pub fn signal_received() -> bool {
    #[cfg(unix)]
    {
        signals::received()
    }
    #[cfg(not(unix))]
    {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_picks_an_ephemeral_port_and_shuts_down() {
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 2,
            ..ServerConfig::default()
        })
        .expect("bind");
        let addr = server.local_addr().expect("local addr");
        assert_ne!(addr.port(), 0);
        assert_eq!(server.registry().shard_count(), 2);
        let handle = server.shutdown_handle();
        assert!(!handle.is_shutdown());
        let runner = std::thread::spawn(move || server.run().expect("run"));
        handle.shutdown();
        assert!(handle.is_shutdown());
        let summary = runner.join().expect("server thread");
        assert!(summary.contains("served 0 request(s)"), "{summary}");
    }

    #[test]
    fn default_config_is_sensible() {
        let config = ServerConfig::default();
        assert_eq!(config.addr, "127.0.0.1:8080");
        assert_eq!(config.threads, 0, "0 = auto");
        assert_eq!(config.max_resident, 64);
        assert!(config.matcher.is_none());
        assert_eq!(config.queue_depth, 512);
        assert_eq!(config.deadline, Duration::from_secs(30));
        assert!(config.data_dir.is_none(), "in-memory by default");
        assert_eq!(config.snapshot_bytes, 4 * 1024 * 1024);
        assert!(config.fsync_batch.is_zero(), "per-write durability");
    }
}
