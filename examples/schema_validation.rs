//! The full schema toolchain around the matcher: generate a valid instance
//! document from a schema, validate it, then break it and watch the
//! validator report each problem with its path.
//!
//! ```sh
//! cargo run --example schema_validation
//! ```

use qmatch::datasets::corpus;
use qmatch::datasets::instances::{generate_instance, InstanceOptions};
use qmatch::xml::Document;
use qmatch::xsd::{parse_schema, validate};

fn main() {
    let schema = parse_schema(corpus::po1_xsd()).expect("corpus schema parses");

    // 1. Generate a valid instance.
    let instance =
        generate_instance(&schema, &InstanceOptions::default()).expect("schema has a root");
    println!("generated instance of {}:\n{instance}", instance.name());

    // 2. It validates.
    let doc = Document::parse(&instance.to_string()).expect("generated XML parses");
    let report = validate(&doc, &schema).expect("validation runs");
    println!("validation: {report}\n");
    assert!(report.is_valid());

    // 3. Break it three ways and look at the diagnostics.
    let broken = r#"<PO currency="USD">
      <OrderNo>minus-forty-two</OrderNo>
      <PurchaseInfo>
        <BillingAddr>1 Main St</BillingAddr>
        <Lines>
          <Item>bolt</Item>
          <Quantity>0</Quantity>
          <UnitOfMeasure>box</UnitOfMeasure>
        </Lines>
      </PurchaseInfo>
      <PurchaseDate>2005-04-05</PurchaseDate>
      <Surprise/>
    </PO>"#;
    let doc = Document::parse(broken).expect("well-formed XML");
    let report = validate(&doc, &schema).expect("validation runs");
    println!("broken instance problems ({}):", report.errors.len());
    for error in &report.errors {
        println!("  {error}");
    }
    assert!(!report.is_valid());
}
