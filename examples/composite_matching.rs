//! COMA-style composite matching (the paper's §7 ongoing work): run several
//! component matchers, combine their similarity matrices with different
//! aggregation strategies, and compare the resulting quality — including
//! the richer candidate-selection strategies (`BestPerSource`, `MaxDelta`)
//! a match UI would use.
//!
//! ```sh
//! cargo run --example composite_matching
//! ```

use qmatch::core::mapping::{select, Selection};
use qmatch::core::report::{f3, Table};
use qmatch::datasets::{corpus, gold};
use qmatch::prelude::*;

fn main() {
    let source = corpus::dcmd_item();
    let target = corpus::dcmd_ord();
    let real = gold::dcmd_gold();
    let config = MatchConfig::default();
    let session = MatchSession::new(config);
    let (source_prepared, target_prepared) = (session.prepare(&source), session.prepare(&target));

    println!(
        "composite matching on the DCMD pair ({} vs {} elements, {} real matches)\n",
        source.element_count(),
        target.element_count(),
        real.len()
    );

    // 1. Compare aggregation strategies at a fixed 1:1 selection.
    let mut table = Table::new([
        "aggregation",
        "found",
        "correct",
        "precision",
        "recall",
        "overall",
    ]);
    let setups: [(&str, Vec<Component>, Aggregation, f64); 4] = [
        (
            "hybrid alone",
            vec![Component::Hybrid],
            Aggregation::Max,
            config.weights.acceptance_threshold(),
        ),
        (
            "max(L,S)",
            vec![Component::Linguistic, Component::Structural],
            Aggregation::Max,
            0.8,
        ),
        (
            "avg(L,S)",
            vec![Component::Linguistic, Component::Structural],
            Aggregation::Average,
            0.55,
        ),
        (
            "weighted(3H,1TE)",
            vec![Component::Hybrid, Component::TreeEdit],
            Aggregation::Weighted(vec![3.0, 1.0]),
            0.65,
        ),
    ];
    for (name, components, aggregation, threshold) in &setups {
        let algorithm = Algorithm::Composite {
            components: components.clone(),
            aggregation: aggregation.clone(),
        };
        let outcome = session
            .run(&algorithm, &source_prepared, &target_prepared)
            .expect("valid composite");
        let mapping = extract_mapping(&outcome.matrix, *threshold);
        let quality = evaluate(&mapping, &source, &target, &real);
        table.row([
            (*name).to_owned(),
            mapping.len().to_string(),
            quality.true_positives.to_string(),
            f3(quality.precision),
            f3(quality.recall),
            f3(quality.overall),
        ]);
    }
    print!("{}", table.render());

    // 2. Selection strategies over the hybrid matrix: a UI would show the
    //    MaxDelta candidate set and let the user confirm.
    let outcome = session
        .run(&Algorithm::Hybrid, &source_prepared, &target_prepared)
        .expect("the hybrid algorithm is infallible");
    println!("\nselection strategies over the hybrid matrix:");
    let mut table = Table::new(["strategy", "pairs", "correct"]);
    for (name, selection) in [
        ("OneToOne(0.78)", Selection::OneToOne { threshold: 0.78 }),
        (
            "BestPerSource(0.78)",
            Selection::BestPerSource { threshold: 0.78 },
        ),
        (
            "MaxDelta(0.78, 0.05)",
            Selection::MaxDelta {
                threshold: 0.78,
                delta: 0.05,
            },
        ),
    ] {
        let mapping = select(&outcome.matrix, selection);
        let quality = evaluate(&mapping, &source, &target, &real);
        table.row([
            name.to_owned(),
            mapping.len().to_string(),
            quality.true_positives.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!("\nMaxDelta trades precision for candidate coverage — useful before manual review");
}
