//! The paper's motivating scenario end-to-end: match the two purchase-order
//! schemas of Figures 1/2, compare all three algorithms (plus the tree-edit
//! baseline), classify the root match on the qualitative taxonomy, and score
//! everything against the manually determined real matches.
//!
//! ```sh
//! cargo run --example purchase_orders
//! ```

use qmatch::core::algorithms::tree_edit_match;
use qmatch::core::report::{f3, Table};
use qmatch::datasets::{corpus, gold};
use qmatch::prelude::*;

fn main() {
    let source = corpus::po1();
    let target = corpus::po2();
    let real = gold::po_gold();
    let config = MatchConfig::default();

    println!(
        "matching {} ({} elements, depth {}) against {} ({} elements, depth {})\n",
        source.name(),
        source.element_count(),
        source.max_depth(),
        target.name(),
        target.element_count(),
        target.max_depth()
    );

    // A session prepares each schema once (interning, tokenization, wave
    // construction) and shares the label cache across every run below.
    let session = MatchSession::new(config);
    let (sp, tp) = (session.prepare(&source), session.prepare(&target));

    // One hybrid run serves both the qualitative classification (paper
    // §2.2) and the quantitative comparison below.
    let hybrid_outcome = session.hybrid(&sp, &tp);
    let category = session.category(&sp, &tp, &hybrid_outcome);
    println!("taxonomy: the root match is classified \"{category}\"\n");

    // Quantitative comparison of all algorithms.
    let runs: [(&str, MatchOutcomeAndMapping); 4] = [
        ("Linguistic", run(session.linguistic(&sp, &tp), 0.5)),
        ("Structural", run(session.structural(&sp, &tp), 0.95)),
        (
            "Hybrid (QMatch)",
            run(hybrid_outcome, config.weights.acceptance_threshold()),
        ),
        (
            "TreeEdit [15]",
            run(tree_edit_match(&source, &target, &config), 0.5),
        ),
    ];

    let mut table = Table::new([
        "algorithm",
        "total QoM",
        "found",
        "correct",
        "precision",
        "recall",
        "overall",
    ]);
    for (name, (outcome, mapping)) in &runs {
        let quality = evaluate(mapping, &source, &target, &real);
        table.row([
            (*name).to_owned(),
            f3(outcome.total_qom),
            mapping.len().to_string(),
            quality.true_positives.to_string(),
            f3(quality.precision),
            f3(quality.recall),
            f3(quality.overall),
        ]);
    }
    print!("{}", table.render());

    // Show the hybrid's actual correspondences.
    let (_, hybrid_mapping) = &runs[2].1;
    println!("\nQMatch correspondences:");
    print!("{}", hybrid_mapping.display(&source, &target));
    println!("\nmanually determined real matches: {}", real.len());
}

type MatchOutcomeAndMapping = (qmatch::core::MatchOutcome, Mapping);

fn run(outcome: qmatch::core::MatchOutcome, threshold: f64) -> MatchOutcomeAndMapping {
    let mapping = extract_mapping(&outcome.matrix, threshold);
    (outcome, mapping)
}
