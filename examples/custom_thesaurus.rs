//! Extending the linguistic substrate for a new domain.
//!
//! The built-in thesaurus covers the paper's evaluation domains; matching
//! schemas from another domain (here: aviation) works better after teaching
//! the matcher that domain's synonyms, acronyms, and abbreviations. This is
//! the paper's observation that the internal algorithms "can be easily
//! replaced" — the lexicon is a pluggable component.
//!
//! ```sh
//! cargo run --example custom_thesaurus
//! ```

use qmatch::lexicon::builtin::default_thesaurus;
use qmatch::lexicon::{LabelGrade, NameMatcher};

fn main() {
    // Out of the box, aviation vocabulary is unknown.
    let stock = NameMatcher::with_default_thesaurus();
    let before = stock.compare("DepartureAerodrome", "OriginAirport");
    println!(
        "before: DepartureAerodrome vs OriginAirport -> {:?} ({:.3})",
        before.grade, before.score
    );

    // Teach the domain: start from the defaults and extend.
    let mut thesaurus = default_thesaurus();
    thesaurus.add_synonyms(["aerodrome", "airport", "airfield"]);
    thesaurus.add_synonyms(["departure", "origin"]);
    thesaurus.add_synonyms(["arrival", "destination"]);
    thesaurus.add_synonyms(["aircraft", "airplane", "plane"]);
    thesaurus.add_acronym(
        "icao",
        ["international", "civil", "aviation", "organization"],
    );
    thesaurus.add_acronym("atc", ["air", "traffic", "control"]);
    thesaurus.add_abbreviation("dep", "departure");
    thesaurus.add_abbreviation("arr", "arrival");
    thesaurus.add_abbreviation("acft", "aircraft");
    thesaurus.add_hypernym("runway", "aerodrome");

    let tuned = NameMatcher::new(thesaurus);
    let cases = [
        ("DepartureAerodrome", "OriginAirport"),
        ("ArrivalTime", "DestinationTime"),
        ("ACFT", "Airplane"),
        ("AirTrafficControl", "ATC"),
        ("DepTime", "DepartureTime"),
        ("Runway", "Airport"),
    ];
    println!("\nafter teaching the aviation domain:");
    for (a, b) in cases {
        let m = tuned.compare(a, b);
        println!("  {a:<22} vs {b:<18} -> {:?} ({:.3})", m.grade, m.score);
    }

    // The tuned matcher upgrades the motivating pair to an exact match
    // (synonym-for-synonym on both tokens).
    let after = tuned.compare("DepartureAerodrome", "OriginAirport");
    assert_eq!(after.grade, LabelGrade::Exact);
    assert!(after.score > before.score);
}
