//! Tuning the axis weights (the experiment behind the paper's Table 2).
//!
//! Sweeps every unit-sum weight vector on a 0.1 grid over the PO and Book
//! pairs, reports the best vectors and the per-axis "ideal ranges" (§5.1
//! reports label 0.25–0.4, properties/level 0.1–0.2, children 0.3–0.5), and
//! shows where the paper's chosen vector lands.
//!
//! ```sh
//! cargo run --release --example weight_tuning
//! ```

use qmatch::core::report::{f3, Table};
use qmatch::core::tuning::{best_ranges, score_weights, sweep, TuningTask};
use qmatch::datasets::{corpus, gold};
use qmatch::prelude::*;

fn main() {
    let (po1, po2, po_gold) = (corpus::po1(), corpus::po2(), gold::po_gold());
    let (article, book, book_gold) = (corpus::article(), corpus::book(), gold::book_gold());
    let tasks = [
        TuningTask {
            name: "PO",
            source: &po1,
            target: &po2,
            gold: &po_gold,
        },
        TuningTask {
            name: "BOOK",
            source: &article,
            target: &book,
            gold: &book_gold,
        },
    ];

    let points = sweep(&tasks, 0.1, 0.5);
    println!(
        "swept {} unit-sum weight vectors (0.1 grid) over {} tasks\n",
        points.len(),
        tasks.len()
    );

    let mut table = Table::new(["rank", "WL", "WP", "WH", "WC", "mean Overall"]);
    for (i, p) in points.iter().take(8).enumerate() {
        table.row([
            (i + 1).to_string(),
            f3(p.weights.label),
            f3(p.weights.properties),
            f3(p.weights.level),
            f3(p.weights.children),
            f3(p.mean_overall),
        ]);
    }
    println!("best vectors:\n{}", table.render());

    let ranges = best_ranges(&points, 10);
    println!("ideal ranges among the top 10 (paper: L 0.25-0.4, P/H 0.1-0.2, C 0.3-0.5):");
    println!("  label      {:.2} - {:.2}", ranges.label.0, ranges.label.1);
    println!(
        "  properties {:.2} - {:.2}",
        ranges.properties.0, ranges.properties.1
    );
    println!("  level      {:.2} - {:.2}", ranges.level.0, ranges.level.1);
    println!(
        "  children   {:.2} - {:.2}",
        ranges.children.0, ranges.children.1
    );

    let paper = score_weights(Weights::PAPER, &tasks, 0.5);
    let rank = points
        .iter()
        .position(|p| p.mean_overall <= paper)
        .map(|i| i + 1)
        .unwrap_or(points.len());
    println!(
        "\npaper's Table 2 vector (0.3, 0.2, 0.1, 0.4) scores {} — rank ~{rank} of {}",
        f3(paper),
        points.len()
    );
}
