//! Large-scale matching: the PIR (231 elements) vs PDB (3753 elements)
//! protein schemas — the biggest workload in the paper's evaluation
//! (Figure 4's 3984-element point). Demonstrates that the memoized O(n·m)
//! TreeMatch handles ~867k node pairs, and that quality holds at scale
//! because the gold standard is known by construction.
//!
//! ```sh
//! cargo run --release --example protein_scale
//! ```

use qmatch::core::report::f3;
use qmatch::datasets::synth;
use qmatch::prelude::*;
use std::time::Instant;

fn main() {
    let source = synth::pir();
    let target = synth::pdb();
    let real = synth::protein_gold();
    let config = MatchConfig::default();

    println!(
        "PIR: {} elements, depth {} | PDB: {} elements, depth {} | node pairs: {}",
        source.element_count(),
        source.max_depth(),
        target.element_count(),
        target.max_depth(),
        source.len() * target.len()
    );
    println!("known real matches (by construction): {}\n", real.len());

    // One session across all three algorithms: the thesaurus build and the
    // distinct-label-pair comparisons are shared, so the later runs only
    // pay for their own wavefronts.
    let session = MatchSession::new(config);
    let (source_prepared, target_prepared) = (session.prepare(source), session.prepare(target));
    let algorithms = [
        ("Linguistic", Algorithm::Linguistic),
        ("Structural", Algorithm::Structural),
        ("Hybrid", Algorithm::Hybrid),
    ];
    for (name, algorithm) in algorithms {
        let start = Instant::now();
        let outcome = session
            .run(&algorithm, &source_prepared, &target_prepared)
            .expect("built-in algorithms are infallible");
        let elapsed = start.elapsed();
        let threshold = match name {
            "Linguistic" => 0.5,
            "Structural" => 0.95,
            _ => config.weights.acceptance_threshold(),
        };
        let mapping = extract_mapping(&outcome.matrix, threshold);
        let quality = evaluate(&mapping, source, target, real);
        println!(
            "{name:<10}  {:>8.1} ms  QoM {}  found {:>3}  precision {}  recall {}  overall {}",
            elapsed.as_secs_f64() * 1e3,
            f3(outcome.total_qom),
            mapping.len(),
            f3(quality.precision),
            f3(quality.recall),
            f3(quality.overall),
        );
    }

    println!("\n(the hybrid finds essentially every preserved/abbreviated/synonym node");
    println!(" while the structural baseline relies on the positional copy and the");
    println!(" linguistic baseline on labels alone — run under --release for speed)");
}
