//! Quickstart: match two XML Schemas with QMatch in a dozen lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use qmatch::prelude::*;

const SOURCE: &str = r#"
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="PO">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="OrderNo" type="xs:integer"/>
        <xs:element name="Quantity" type="xs:positiveInteger"/>
        <xs:element name="UnitOfMeasure" type="xs:string"/>
        <xs:element name="PurchaseDate" type="xs:date"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>"#;

const TARGET: &str = r#"
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="PurchaseOrder">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="OrderNo" type="xs:integer"/>
        <xs:element name="Qty" type="xs:positiveInteger"/>
        <xs:element name="UOM" type="xs:string"/>
        <xs:element name="Date" type="xs:date"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>"#;

fn main() {
    // 1. Parse the schemas and compile them to schema trees.
    let source = SchemaTree::compile(&parse_schema(SOURCE).expect("source parses"))
        .expect("source compiles");
    let target = SchemaTree::compile(&parse_schema(TARGET).expect("target parses"))
        .expect("target compiles");

    // 2. Run the hybrid QMatch algorithm with the paper's default weights
    //    (label 0.3, properties 0.2, level 0.1, children 0.4).
    let config = MatchConfig::default();
    let session = MatchSession::new(config);
    let (source_prepared, target_prepared) = (session.prepare(&source), session.prepare(&target));
    let outcome = session
        .run(&Algorithm::Hybrid, &source_prepared, &target_prepared)
        .expect("the hybrid algorithm is infallible");
    println!(
        "total QoM({}, {}) = {:.3}\n",
        source.name(),
        target.name(),
        outcome.total_qom
    );

    // 3. Extract the 1:1 correspondences the match implies.
    let mapping = extract_mapping(&outcome.matrix, config.weights.acceptance_threshold());
    println!("discovered correspondences:");
    print!("{}", mapping.display(&source, &target));
}
