//! Property-based tests over randomly generated schema trees: the invariants
//! every matcher must hold regardless of input shape.
//!
//! Randomized with the in-repo deterministic PRNG (`qmatch-prng`) — fixed
//! seeds, so every run draws the same trees and a failing case reproduces
//! from its index.

#![allow(deprecated)] // the one-shot wrappers stay covered end-to-end until removal

use qmatch::core::algorithms::tree_edit_match;
use qmatch::prelude::*;
use qmatch::xsd::SchemaTree;
use qmatch_prng::SmallRng;

const CASES: usize = 64;

/// A random tree as `(label, parent)` entries valid for
/// `SchemaTree::from_labels` (parents always precede children).
fn random_tree(rng: &mut SmallRng, max_nodes: usize) -> SchemaTree {
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    let nodes = rng.gen_range(1..=max_nodes);
    let mut labels: Vec<(String, Option<usize>)> = Vec::with_capacity(nodes);
    for i in 0..nodes {
        let len = rng.gen_range(0..10usize);
        let mut label = String::new();
        label.push(FIRST[rng.gen_range(0..FIRST.len())] as char);
        for _ in 0..len {
            label.push(REST[rng.gen_range(0..REST.len())] as char);
        }
        let parent = if i == 0 {
            None
        } else {
            Some(rng.gen_range(0..i))
        };
        labels.push((label, parent));
    }
    let borrowed: Vec<(&str, Option<usize>)> =
        labels.iter().map(|(l, p)| (l.as_str(), *p)).collect();
    SchemaTree::from_labels("random", &borrowed)
}

#[test]
fn hybrid_scores_stay_in_unit_range() {
    let mut rng = SmallRng::seed_from_u64(0xB1);
    for case in 0..CASES {
        let a = random_tree(&mut rng, 24);
        let b = random_tree(&mut rng, 24);
        let outcome = hybrid_match(&a, &b, &MatchConfig::default());
        outcome.matrix.assert_normalized();
        assert!(
            (0.0..=1.0).contains(&outcome.total_qom),
            "case {case}: {}",
            outcome.total_qom
        );
    }
}

#[test]
fn structural_scores_stay_in_unit_range() {
    let mut rng = SmallRng::seed_from_u64(0xB2);
    for _ in 0..CASES {
        let a = random_tree(&mut rng, 24);
        let b = random_tree(&mut rng, 24);
        structural_match(&a, &b, &MatchConfig::default())
            .matrix
            .assert_normalized();
    }
}

#[test]
fn linguistic_scores_stay_in_unit_range() {
    let mut rng = SmallRng::seed_from_u64(0xB3);
    for _ in 0..CASES {
        let a = random_tree(&mut rng, 24);
        let b = random_tree(&mut rng, 24);
        linguistic_match(&a, &b, &MatchConfig::default())
            .matrix
            .assert_normalized();
    }
}

#[test]
fn tree_edit_scores_stay_in_unit_range() {
    let mut rng = SmallRng::seed_from_u64(0xB4);
    for _ in 0..CASES {
        let a = random_tree(&mut rng, 16);
        let b = random_tree(&mut rng, 16);
        tree_edit_match(&a, &b, &MatchConfig::default())
            .matrix
            .assert_normalized();
    }
}

#[test]
fn self_match_is_always_perfect() {
    let mut rng = SmallRng::seed_from_u64(0xB5);
    let config = MatchConfig::default();
    for case in 0..CASES {
        let a = random_tree(&mut rng, 24);
        assert!(
            (hybrid_match(&a, &a, &config).total_qom - 1.0).abs() < 1e-9,
            "case {case}"
        );
        assert!(
            (structural_match(&a, &a, &config).total_qom - 1.0).abs() < 1e-9,
            "case {case}"
        );
        assert!(
            (tree_edit_match(&a, &a, &config).total_qom - 1.0).abs() < 1e-9,
            "case {case}"
        );
        // The flat linguistic total is a mean of per-node bests, all 1.0.
        assert!(
            (linguistic_match(&a, &a, &config).total_qom - 1.0).abs() < 1e-9,
            "case {case}"
        );
    }
}

#[test]
fn linguistic_matrix_is_transpose_symmetric() {
    let mut rng = SmallRng::seed_from_u64(0xB6);
    let config = MatchConfig::default();
    for case in 0..CASES {
        let a = random_tree(&mut rng, 12);
        let b = random_tree(&mut rng, 12);
        // Label similarity has no direction.
        let ab = linguistic_match(&a, &b, &config);
        let ba = linguistic_match(&b, &a, &config);
        for (s, t, v) in ab.matrix.iter() {
            assert!((v - ba.matrix.get(t, s)).abs() < 1e-9, "case {case}");
        }
    }
}

#[test]
fn mapping_extraction_is_injective_and_thresholded() {
    let mut rng = SmallRng::seed_from_u64(0xB7);
    for case in 0..CASES {
        let a = random_tree(&mut rng, 16);
        let b = random_tree(&mut rng, 16);
        let threshold = rng.gen_range(0.0..1.0f64);
        let outcome = hybrid_match(&a, &b, &MatchConfig::default());
        let mapping = extract_mapping(&outcome.matrix, threshold);
        let mut sources = std::collections::HashSet::new();
        let mut targets = std::collections::HashSet::new();
        for c in &mapping.pairs {
            assert!(c.score >= threshold, "case {case}");
            assert!(sources.insert(c.source), "case {case}: source used twice");
            assert!(targets.insert(c.target), "case {case}: target used twice");
        }
    }
}

#[test]
fn raising_the_threshold_never_grows_the_mapping() {
    let mut rng = SmallRng::seed_from_u64(0xB8);
    for case in 0..CASES {
        let a = random_tree(&mut rng, 16);
        let b = random_tree(&mut rng, 16);
        let outcome = hybrid_match(&a, &b, &MatchConfig::default());
        let mut last = usize::MAX;
        for step in 0..=10 {
            let mapping = extract_mapping(&outcome.matrix, step as f64 / 10.0);
            assert!(mapping.len() <= last, "case {case} step {step}");
            last = mapping.len();
        }
    }
}

#[test]
fn total_exact_weight_identity_holds_for_any_weights() {
    let mut rng = SmallRng::seed_from_u64(0xB9);
    for case in 0..CASES {
        let l = rng.gen_range(0.0..1.0f64);
        let p = rng.gen_range(0.0..1.0f64);
        let h = rng.gen_range(0.0..1.0f64);
        // Normalize three free components into a unit-sum vector.
        let rest = l + p + h;
        let (l, p, h) = if rest > 1.0 {
            (l / rest, p / rest, h / rest)
        } else {
            (l, p, h)
        };
        let c = (1.0 - l - p - h).max(0.0);
        let Ok(weights) = Weights::new(l, p, h, c) else {
            continue;
        };
        assert!(
            (weights.qom(1.0, 1.0, 1.0, 1.0) - 1.0).abs() < 1e-9,
            "case {case}"
        );
        assert!(
            (weights.leaf_qom(1.0, 1.0) - 1.0).abs() < 1e-9,
            "case {case}"
        );
    }
}

#[test]
fn evaluation_counts_are_consistent() {
    use qmatch::core::mapping::path_of;
    let mut rng = SmallRng::seed_from_u64(0xBA);
    for case in 0..CASES {
        let a = random_tree(&mut rng, 12);
        let b = random_tree(&mut rng, 12);
        let outcome = hybrid_match(&a, &b, &MatchConfig::default());
        let mapping = extract_mapping(&outcome.matrix, 0.6);
        // Gold = the first half of the predictions plus a fabricated miss.
        let mut gold = qmatch::core::GoldStandard::new();
        for c in mapping.pairs.iter().take(mapping.len() / 2) {
            gold.add(&path_of(&a, c.source), &path_of(&b, c.target));
        }
        gold.add("no/such/source", "no/such/target");
        let q = evaluate(&mapping, &a, &b, &gold);
        assert_eq!(
            q.true_positives + q.false_positives,
            mapping.len(),
            "case {case}"
        );
        assert_eq!(
            q.true_positives + q.false_negatives,
            gold.len(),
            "case {case}"
        );
        assert!(q.precision >= 0.0 && q.precision <= 1.0, "case {case}");
        assert!(q.recall >= 0.0 && q.recall <= 1.0, "case {case}");
        assert!(q.overall <= 1.0, "case {case}");
    }
}
