//! Property tests for the XSD pipeline: generated schema documents must
//! parse, resolve, and compile; the compiled tree must faithfully reflect
//! the generated structure.
//!
//! Randomized with the in-repo deterministic PRNG (`qmatch-prng`) — fixed
//! seeds, so failures reproduce from the case index in the message.

use qmatch::xml::escape::escape_attr;
use qmatch::xsd::{parse_schema, SchemaTree};
use qmatch_prng::SmallRng;
use std::fmt::Write as _;

const CASES: usize = 128;

/// A generated element for the random schema: name, type index, and number
/// of children (0 = leaf).
#[derive(Debug, Clone)]
struct GenElement {
    name: String,
    type_idx: usize,
    children: Vec<GenElement>,
}

const TYPES: &[&str] = &[
    "xs:string",
    "xs:integer",
    "xs:date",
    "xs:decimal",
    "xs:boolean",
];

/// `[A-Za-z][A-Za-z0-9_]{0,8}`, matching the old proptest regex strategy.
fn gen_name(rng: &mut SmallRng) -> String {
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
    let len = rng.gen_range(0..=8usize);
    let mut s = String::new();
    s.push(FIRST[rng.gen_range(0..FIRST.len())] as char);
    for _ in 0..len {
        s.push(REST[rng.gen_range(0..REST.len())] as char);
    }
    s
}

fn gen_element(rng: &mut SmallRng, depth: u32) -> GenElement {
    // Leaves at depth 0, and with growing probability as depth shrinks,
    // to keep trees small (the old strategy targeted ~32 nodes).
    let leaf = depth == 0 || rng.gen_bool(0.4);
    if leaf {
        GenElement {
            name: gen_name(rng),
            type_idx: rng.gen_range(0..TYPES.len()),
            children: Vec::new(),
        }
    } else {
        let arity = rng.gen_range(1..5usize);
        GenElement {
            name: gen_name(rng),
            type_idx: 0,
            children: (0..arity).map(|_| gen_element(rng, depth - 1)).collect(),
        }
    }
}

fn render(element: &GenElement, out: &mut String, indent: usize, min_occurs: u32) {
    let pad = "  ".repeat(indent);
    let occurs = if min_occurs == 0 {
        " minOccurs=\"0\""
    } else {
        ""
    };
    if element.children.is_empty() {
        let _ = writeln!(
            out,
            "{pad}<xs:element name=\"{}\" type=\"{}\"{occurs}/>",
            escape_attr(&element.name),
            TYPES[element.type_idx]
        );
    } else {
        let _ = writeln!(
            out,
            "{pad}<xs:element name=\"{}\"{occurs}>",
            escape_attr(&element.name)
        );
        let _ = writeln!(out, "{pad}  <xs:complexType><xs:sequence>");
        for (i, child) in element.children.iter().enumerate() {
            render(child, out, indent + 2, (i % 2) as u32);
        }
        let _ = writeln!(out, "{pad}  </xs:sequence></xs:complexType>");
        let _ = writeln!(out, "{pad}</xs:element>");
    }
}

fn render_schema(root: &GenElement) -> String {
    let mut xsd = String::from(
        "<?xml version=\"1.0\"?>\n<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">\n",
    );
    render(root, &mut xsd, 1, 1);
    xsd.push_str("</xs:schema>\n");
    xsd
}

fn count(element: &GenElement) -> usize {
    1 + element.children.iter().map(count).sum::<usize>()
}

fn depth(element: &GenElement) -> u32 {
    element
        .children
        .iter()
        .map(|c| 1 + depth(c))
        .max()
        .unwrap_or(0)
}

#[test]
fn generated_schemas_parse_and_compile() {
    let mut rng = SmallRng::seed_from_u64(0xC1);
    for case in 0..CASES {
        let root = gen_element(&mut rng, 4);
        let xsd = render_schema(&root);

        let schema = parse_schema(&xsd).expect("generated schema must parse");
        let tree = SchemaTree::compile(&schema).expect("generated schema must compile");

        assert_eq!(tree.element_count(), count(&root), "case {case}");
        assert_eq!(tree.max_depth(), depth(&root), "case {case}");
        assert_eq!(
            tree.root().label.as_str(),
            root.name.as_str(),
            "case {case}"
        );
    }
}

#[test]
fn compiled_tree_preserves_child_order() {
    let mut rng = SmallRng::seed_from_u64(0xC2);
    for case in 0..CASES {
        let root = gen_element(&mut rng, 3);
        let tree = SchemaTree::compile(&parse_schema(&render_schema(&root)).unwrap()).unwrap();

        // The root's children appear in document order with 1-based `order`.
        let root_node = tree.root();
        assert_eq!(root_node.children.len(), root.children.len(), "case {case}");
        for (i, (&child_id, generated)) in root_node.children.iter().zip(&root.children).enumerate()
        {
            let child = tree.node(child_id);
            assert_eq!(child.label.as_str(), generated.name.as_str(), "case {case}");
            assert_eq!(child.properties.order, i as u32 + 1, "case {case}");
            assert_eq!(child.level, 1, "case {case}");
            assert_eq!(child.parent, Some(tree.root_id()), "case {case}");
        }
    }
}

#[test]
fn writer_round_trips_generated_schemas() {
    let mut rng = SmallRng::seed_from_u64(0xC3);
    for case in 0..CASES {
        let root = gen_element(&mut rng, 4);
        let original = parse_schema(&render_schema(&root)).unwrap();
        let rendered = qmatch::xsd::write_schema(&original);
        let reparsed = parse_schema(&rendered).expect("rendered schema parses");
        assert_eq!(original, reparsed, "case {case}");
    }
}

/// Every file in the malformed corpus (crashers promoted from fuzzing
/// sessions plus hand-written pathological inputs) must be rejected with a
/// typed error somewhere in the pipeline — parse or compile — and must
/// never panic.
#[test]
fn malformed_corpus_is_rejected_with_typed_errors() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/malformed");
    let mut checked = 0;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("malformed corpus directory exists")
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    for path in entries {
        if path.extension().and_then(|e| e.to_str()) != Some("xsd") {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).unwrap();
        let pipeline = parse_schema(&text).and_then(|s| SchemaTree::compile(&s));
        assert!(
            pipeline.is_err(),
            "{name}: expected the pipeline to reject this input"
        );
        // The error formats without panicking too.
        let _ = pipeline.unwrap_err().to_string();
        checked += 1;
    }
    assert!(checked >= 10, "corpus unexpectedly small: {checked} files");
}

#[test]
fn parse_never_panics_on_mutated_schema_text() {
    let mut rng = SmallRng::seed_from_u64(0xC4);
    for _ in 0..CASES {
        let root = gen_element(&mut rng, 3);
        let xsd = render_schema(&root);
        // Truncate at an arbitrary char boundary: must error, never panic.
        let mut idx = rng.gen_range(0..=xsd.len());
        while !xsd.is_char_boundary(idx) {
            idx -= 1;
        }
        let _ = parse_schema(&xsd[..idx]);
    }
}
