//! Property tests for the XSD pipeline: generated schema documents must
//! parse, resolve, and compile; the compiled tree must faithfully reflect
//! the generated structure.

use proptest::prelude::*;
use qmatch::xml::escape::escape_attr;
use qmatch::xsd::{parse_schema, SchemaTree};
use std::fmt::Write as _;

/// A generated element for the random schema: name, type index, and number
/// of children (0 = leaf).
#[derive(Debug, Clone)]
struct GenElement {
    name: String,
    type_idx: usize,
    children: Vec<GenElement>,
}

const TYPES: &[&str] = &[
    "xs:string",
    "xs:integer",
    "xs:date",
    "xs:decimal",
    "xs:boolean",
];

fn gen_element(depth: u32) -> impl Strategy<Value = GenElement> {
    let leaf = ("[A-Za-z][A-Za-z0-9_]{0,8}", 0usize..TYPES.len()).prop_map(|(name, type_idx)| {
        GenElement {
            name,
            type_idx,
            children: Vec::new(),
        }
    });
    leaf.prop_recursive(depth, 32, 5, |inner| {
        (
            "[A-Za-z][A-Za-z0-9_]{0,8}",
            proptest::collection::vec(inner, 1..5),
        )
            .prop_map(|(name, children)| GenElement {
                name,
                type_idx: 0,
                children,
            })
    })
}

fn render(element: &GenElement, out: &mut String, indent: usize, min_occurs: u32) {
    let pad = "  ".repeat(indent);
    let occurs = if min_occurs == 0 {
        " minOccurs=\"0\""
    } else {
        ""
    };
    if element.children.is_empty() {
        let _ = writeln!(
            out,
            "{pad}<xs:element name=\"{}\" type=\"{}\"{occurs}/>",
            escape_attr(&element.name),
            TYPES[element.type_idx]
        );
    } else {
        let _ = writeln!(
            out,
            "{pad}<xs:element name=\"{}\"{occurs}>",
            escape_attr(&element.name)
        );
        let _ = writeln!(out, "{pad}  <xs:complexType><xs:sequence>");
        for (i, child) in element.children.iter().enumerate() {
            render(child, out, indent + 2, (i % 2) as u32);
        }
        let _ = writeln!(out, "{pad}  </xs:sequence></xs:complexType>");
        let _ = writeln!(out, "{pad}</xs:element>");
    }
}

fn count(element: &GenElement) -> usize {
    1 + element.children.iter().map(count).sum::<usize>()
}

fn depth(element: &GenElement) -> u32 {
    element
        .children
        .iter()
        .map(|c| 1 + depth(c))
        .max()
        .unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn generated_schemas_parse_and_compile(root in gen_element(4)) {
        let mut xsd = String::from(
            "<?xml version=\"1.0\"?>\n<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">\n",
        );
        render(&root, &mut xsd, 1, 1);
        xsd.push_str("</xs:schema>\n");

        let schema = parse_schema(&xsd).expect("generated schema must parse");
        let tree = SchemaTree::compile(&schema).expect("generated schema must compile");

        prop_assert_eq!(tree.element_count(), count(&root));
        prop_assert_eq!(tree.max_depth(), depth(&root));
        prop_assert_eq!(tree.root().label.as_str(), root.name.as_str());
    }

    #[test]
    fn compiled_tree_preserves_child_order(root in gen_element(3)) {
        let mut xsd = String::from(
            "<?xml version=\"1.0\"?>\n<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">\n",
        );
        render(&root, &mut xsd, 1, 1);
        xsd.push_str("</xs:schema>\n");
        let tree = SchemaTree::compile(&parse_schema(&xsd).unwrap()).unwrap();

        // The root's children appear in document order with 1-based `order`.
        let root_node = tree.root();
        prop_assert_eq!(root_node.children.len(), root.children.len());
        for (i, (&child_id, generated)) in
            root_node.children.iter().zip(&root.children).enumerate()
        {
            let child = tree.node(child_id);
            prop_assert_eq!(child.label.as_str(), generated.name.as_str());
            prop_assert_eq!(child.properties.order, i as u32 + 1);
            prop_assert_eq!(child.level, 1);
            prop_assert_eq!(child.parent, Some(tree.root_id()));
        }
    }

    #[test]
    fn writer_round_trips_generated_schemas(root in gen_element(4)) {
        let mut xsd = String::from(
            "<?xml version=\"1.0\"?>\n<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">\n",
        );
        render(&root, &mut xsd, 1, 1);
        xsd.push_str("</xs:schema>\n");
        let original = parse_schema(&xsd).unwrap();
        let rendered = qmatch::xsd::write_schema(&original);
        let reparsed = parse_schema(&rendered).expect("rendered schema parses");
        prop_assert_eq!(original, reparsed);
    }

    #[test]
    fn parse_never_panics_on_mutated_schema_text(
        root in gen_element(3),
        cut in any::<proptest::sample::Index>(),
    ) {
        let mut xsd = String::from(
            "<?xml version=\"1.0\"?>\n<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">\n",
        );
        render(&root, &mut xsd, 1, 1);
        xsd.push_str("</xs:schema>\n");
        // Truncate at an arbitrary char boundary: must error, never panic.
        let mut idx = cut.index(xsd.len());
        while !xsd.is_char_boundary(idx) {
            idx -= 1;
        }
        let truncated = &xsd[..idx];
        let _ = parse_schema(truncated);
    }
}
