//! End-to-end tests for the epoll reactor's protection machinery: the
//! slow-loris header deadline, bounded-queue backpressure (`429` +
//! `Retry-After`), and the per-request deadline budget (`503`).
//!
//! Determinism notes: the backpressure test runs with `queue_depth: 0`
//! (every queue-bound request is shed — no timing race), and the deadline
//! test with `deadline: Duration::ZERO` (every dequeued job has already
//! expired). The slow-loris test only asserts one-sided timing facts: the
//! fast client finishes, the stalled client is eventually cut off.

use qmatch::datasets::corpus;
use qmatch_serve::{Server, ServerConfig, ShutdownHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Boots a server, giving the caller a chance to pre-register schemas
/// through the embedder API before the reactor starts (needed when the
/// config rejects every queued request, so `PUT` could never succeed).
fn boot_registered(
    config: ServerConfig,
) -> (SocketAddr, ShutdownHandle, std::thread::JoinHandle<String>) {
    let server = Server::bind(config).expect("bind ephemeral port");
    for (name, tree) in [("po1", corpus::po1()), ("po2", corpus::po2())] {
        server.registry().register(name, tree, b"<preloaded/>");
    }
    let addr = server.local_addr().expect("local addr");
    let handle = server.shutdown_handle();
    let runner = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, runner)
}

/// One request over a fresh connection (`Connection: close` framing),
/// returning status, response head, and body.
fn send(addr: SocketAddr, method: &str, target: &str, body: &[u8]) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {target} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body).expect("write body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let head_end = text.find("\r\n\r\n").expect("header separator");
    let status: u16 = text
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (
        status,
        text[..head_end].to_owned(),
        text[head_end + 4..].to_owned(),
    )
}

#[test]
fn slow_client_is_cut_off_without_delaying_fast_clients() {
    let (addr, shutdown, runner) = boot_registered(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 2,
        header_deadline: Duration::from_millis(250),
        idle_deadline: Duration::from_millis(250),
        ..ServerConfig::default()
    });

    // A slow-loris client: opens the connection, writes half a request
    // head, and stalls forever.
    let mut slow = TcpStream::connect(addr).expect("connect slow");
    slow.write_all(b"POST /v1/match?source=po1&ta")
        .expect("partial head");

    // While the slow client is stalled, a well-behaved client gets full
    // service from the same reactor.
    let t0 = std::time::Instant::now();
    let (status, _, body) = send(addr, "POST", "/v1/match?source=po1&target=po2", b"");
    assert_eq!(status, 200, "{body}");
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "fast client was delayed behind the stalled one: {:?}",
        t0.elapsed()
    );

    // The stalled connection is cut off once the header deadline lapses:
    // the server sends a best-effort 408 and closes, so the client-side
    // read terminates instead of hanging.
    slow.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut raw = Vec::new();
    slow.read_to_end(&mut raw).expect("slow read terminates");
    let text = String::from_utf8_lossy(&raw);
    assert!(
        text.starts_with("HTTP/1.1 408 "),
        "stalled mid-head client should see the 408 cutoff: {text:?}"
    );
    assert!(text.contains("request_timeout"), "{text:?}");

    // A connection that never writes anything is reaped by the idle
    // deadline with a bare close (no request to answer).
    let mut idle = TcpStream::connect(addr).expect("connect idle");
    idle.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut raw = Vec::new();
    idle.read_to_end(&mut raw).expect("idle read terminates");
    assert!(raw.is_empty(), "idle reap sends nothing: {raw:?}");

    shutdown.shutdown();
    runner.join().expect("server thread");
}

#[test]
fn saturated_queue_sheds_load_with_429_and_retry_after() {
    // queue_depth 0: every request bound for a shard queue is shed, with
    // no dependence on worker timing.
    let (addr, shutdown, runner) = boot_registered(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 2,
        queue_depth: 0,
        ..ServerConfig::default()
    });
    let (status, head, body) = send(addr, "POST", "/v1/match?source=po1&target=po2", b"");
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("backpressure"), "{body}");
    assert!(head.contains("retry-after: 1"), "{head}");
    assert!(head.contains("x-request-id:"), "{head}");
    // The scatter path sheds identically.
    let (status, head, body) = send(addr, "POST", "/v1/match/topk?source=po1&k=3", b"");
    assert_eq!(status, 429, "{body}");
    assert!(head.contains("retry-after: 1"), "{head}");
    // The deprecated alias keeps its deprecation marking even when shed.
    let (status, head, _) = send(addr, "POST", "/match?source=po1&target=po2", b"");
    assert_eq!(status, 429);
    assert!(head.contains("deprecation: true"), "{head}");
    // Inline endpoints never occupy the queue and still answer.
    let (status, _, _) = send(addr, "GET", "/v1/healthz", b"");
    assert_eq!(status, 200);
    let (status, _, metrics) = send(addr, "GET", "/v1/metrics", b"");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("qmatch_rejected_backpressure_total 3"),
        "{metrics}"
    );
    shutdown.shutdown();
    runner.join().expect("server thread");
}

#[test]
fn server_default_precision_is_used_and_echoed() {
    use qmatch::core::matrix::Precision;
    use qmatch::core::model::MatchConfig;
    let (addr, shutdown, runner) = boot_registered(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 2,
        config: MatchConfig {
            precision: Precision::F32,
            ..MatchConfig::default()
        },
        ..ServerConfig::default()
    });
    // No precision= parameter: the server-wide default (the CLI's
    // --precision flag) applies and is echoed in the response.
    let (status, _, body) = send(addr, "POST", "/v1/match?source=po1&target=po2", b"");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains(r#""precision":"f32""#), "{body}");
    let (status, _, body) = send(addr, "POST", "/v1/match/topk?source=po1&k=3", b"");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains(r#""precision":"f32""#), "{body}");
    // The query parameter still wins over the server default.
    let (status, _, body) = send(
        addr,
        "POST",
        "/v1/match?source=po1&target=po2&precision=f64",
        b"",
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains(r#""precision":"f64""#), "{body}");
    shutdown.shutdown();
    runner.join().expect("server thread");
}

#[test]
fn expired_deadline_budget_answers_503() {
    // A zero deadline budget: every job has already expired by the time a
    // shard worker dequeues it.
    let (addr, shutdown, runner) = boot_registered(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 2,
        deadline: Duration::ZERO,
        ..ServerConfig::default()
    });
    let (status, head, body) = send(addr, "POST", "/v1/match?source=po1&target=po2", b"");
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("deadline_exceeded"), "{body}");
    assert!(head.contains("x-request-id:"), "{head}");
    // Scatter-gather reports the expiry exactly once after all shards
    // decrement.
    let (status, _, body) = send(addr, "POST", "/v1/match/topk?source=po1&k=3", b"");
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("deadline_exceeded"), "{body}");
    // Inline endpoints carry no deadline budget.
    let (status, _, _) = send(addr, "GET", "/v1/healthz", b"");
    assert_eq!(status, 200);
    shutdown.shutdown();
    runner.join().expect("server thread");
}
