//! End-to-end tests for `qmatch-serve` over a real localhost socket.
//!
//! Each test binds an ephemeral port, drives the server with a plain
//! `TcpStream` client, and shuts it down through the handle. The match
//! endpoints are checked for *bit-identity* with the library: every float
//! in a response must equal `fmt_f64` of the corresponding
//! `MatchSession` result, including under concurrent clients.

use qmatch::core::mapping::extract_mapping;
use qmatch::core::model::MatchConfig;
use qmatch::core::{Aggregation, Component, MatchSession};
use qmatch::datasets::corpus;
use qmatch::xsd::IngestLimits;
use qmatch_serve::{fmt_f64, Server, ServerConfig, ShutdownHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

type XsdSource = fn() -> &'static str;

/// The corpus slice every test registers: name → embedded XSD source.
const CORPUS: [(&str, XsdSource); 6] = [
    ("po1", corpus::po1_xsd),
    ("po2", corpus::po2_xsd),
    ("article", corpus::article_xsd),
    ("book", corpus::book_xsd),
    ("dcmd_item", corpus::dcmd_item_xsd),
    ("dcmd_ord", corpus::dcmd_ord_xsd),
];

fn boot_with(
    config: ServerConfig,
) -> (SocketAddr, ShutdownHandle, std::thread::JoinHandle<String>) {
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = server.shutdown_handle();
    let runner = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, runner)
}

fn boot() -> (SocketAddr, ShutdownHandle, std::thread::JoinHandle<String>) {
    boot_with(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 4,
        ..ServerConfig::default()
    })
}

/// One request over a fresh connection (`Connection: close` framing).
fn send(addr: SocketAddr, method: &str, target: &str, body: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {target} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body).expect("write body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let head_end = text.find("\r\n\r\n").expect("header separator");
    let status: u16 = text
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, text[head_end + 4..].to_owned())
}

/// Like [`send`], but with caller-supplied extra request headers, and
/// returning the response head text alongside the body.
fn send_raw(
    addr: SocketAddr,
    method: &str,
    target: &str,
    extra_headers: &str,
    body: &[u8],
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {target} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n{extra_headers}connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body).expect("write body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let head_end = text.find("\r\n\r\n").expect("header separator");
    let status: u16 = text
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (
        status,
        text[..head_end].to_owned(),
        text[head_end + 4..].to_owned(),
    )
}

fn register_corpus(addr: SocketAddr) {
    for (name, xsd) in CORPUS {
        let (status, body) = send(addr, "PUT", &format!("/schemas/{name}"), xsd().as_bytes());
        assert_eq!(status, 201, "registering {name}: {body}");
    }
}

/// The raw JSON text of a top-level scalar field (`"key":<value>`).
fn json_field<'a>(body: &'a str, key: &str) -> &'a str {
    let pattern = format!("\"{key}\":");
    let start = body.find(&pattern).map(|i| i + pattern.len());
    let start = start.unwrap_or_else(|| panic!("no field {key:?} in {body}"));
    let rest = &body[start..];
    let end = rest
        .find([',', '}'])
        .unwrap_or_else(|| panic!("unterminated field {key:?}"));
    &rest[..end]
}

/// A library session prepared over the same corpus, for expectations.
fn library() -> (MatchSession, Vec<(&'static str, qmatch::xsd::SchemaTree)>) {
    let session = MatchSession::new(MatchConfig::default());
    let trees = vec![
        ("po1", corpus::po1()),
        ("po2", corpus::po2()),
        ("article", corpus::article()),
        ("book", corpus::book()),
        ("dcmd_item", corpus::dcmd_item()),
        ("dcmd_ord", corpus::dcmd_ord()),
    ];
    (session, trees)
}

#[test]
fn health_listing_and_hybrid_bit_identity() {
    let (addr, shutdown, runner) = boot();
    let (status, body) = send(addr, "GET", "/healthz", b"");
    assert_eq!(status, 200);
    assert_eq!(body, r#"{"status":"ok"}"#);
    register_corpus(addr);
    let (status, listing) = send(addr, "GET", "/schemas", b"");
    assert_eq!(status, 200);
    assert!(listing.contains(r#""count":6"#), "{listing}");
    assert!(listing.contains(r#""name":"po1""#));

    let (status, body) = send(addr, "POST", "/match?source=po1&target=po2", b"");
    assert_eq!(status, 200, "{body}");
    // Library expectation, formatted through the same float writer.
    let (session, trees) = library();
    let po1 = trees.iter().find(|(n, _)| *n == "po1").unwrap().1.clone();
    let po2 = trees.iter().find(|(n, _)| *n == "po2").unwrap().1.clone();
    let (pa, pb) = (session.prepare(&po1), session.prepare(&po2));
    let outcome = session.hybrid(&pa, &pb);
    assert_eq!(
        json_field(&body, "total_qom"),
        fmt_f64(outcome.total_qom),
        "{body}"
    );
    let threshold = session.config().weights.acceptance_threshold();
    assert_eq!(json_field(&body, "threshold"), fmt_f64(threshold));
    let mapping = extract_mapping(&outcome.matrix, threshold);
    assert_eq!(
        json_field(&body, "matches"),
        mapping.len().to_string(),
        "{body}"
    );
    // Every accepted pair appears, in order, with the identical score text.
    let mut cursor = 0usize;
    for (source_path, target_path) in mapping.to_path_pairs(&po1, &po2) {
        let pair = format!(r#""source_path":"{source_path}","target_path":"{target_path}""#);
        let at = body[cursor..]
            .find(&pair)
            .unwrap_or_else(|| panic!("missing/unordered pair {pair} in {body}"));
        cursor += at + pair.len();
    }
    for pair in &mapping.pairs {
        assert!(
            body.contains(&format!(r#""score":{}"#, fmt_f64(pair.score))),
            "score of {pair:?} not rendered bit-identically: {body}"
        );
    }
    // The category comes from the same session machinery.
    let category = session.category(&pa, &pb, &outcome);
    assert_eq!(
        json_field(&body, "category"),
        format!("\"{category}\""),
        "{body}"
    );
    shutdown.shutdown();
    let summary = runner.join().expect("server thread");
    assert!(summary.contains("6 schema(s) registered"), "{summary}");
}

#[test]
fn algorithm_variants_match_the_library() {
    let (addr, shutdown, runner) = boot();
    register_corpus(addr);
    let (session, trees) = library();
    let article = trees
        .iter()
        .find(|(n, _)| *n == "article")
        .unwrap()
        .1
        .clone();
    let book = trees.iter().find(|(n, _)| *n == "book").unwrap().1.clone();
    let (pa, pb) = (session.prepare(&article), session.prepare(&book));
    let expectations = [
        ("linguistic", session.linguistic(&pa, &pb).total_qom),
        ("structural", session.structural(&pa, &pb).total_qom),
        (
            "composite",
            session
                .composite(
                    &pa,
                    &pb,
                    &[Component::Linguistic, Component::Structural],
                    &Aggregation::Average,
                )
                .expect("composite")
                .total_qom,
        ),
    ];
    for (algo, expected) in expectations {
        let (status, body) = send(
            addr,
            "POST",
            &format!("/match?source=article&target=book&algo={algo}"),
            b"",
        );
        assert_eq!(status, 200, "{algo}: {body}");
        assert_eq!(
            json_field(&body, "total_qom"),
            fmt_f64(expected),
            "{algo} parity: {body}"
        );
    }
    // Explicit composite knobs are honoured.
    let max_qom = session
        .composite(&pa, &pb, &[Component::Hybrid], &Aggregation::Max)
        .expect("composite")
        .total_qom;
    let (status, body) = send(
        addr,
        "POST",
        "/match?source=article&target=book&algo=composite&components=hybrid&agg=max",
        b"",
    );
    assert_eq!(status, 200, "{body}");
    assert_eq!(json_field(&body, "total_qom"), fmt_f64(max_qom));
    // explain=1 produces per-pair explanations under hybrid.
    let (status, body) = send(addr, "POST", "/match?source=po1&target=po2&explain=1", b"");
    assert_eq!(status, 200);
    assert!(body.contains(r#""explanations":["#), "{body}");
    shutdown.shutdown();
    runner.join().expect("server thread");
}

#[test]
fn topk_ranks_the_registry_like_the_library() {
    let (addr, shutdown, runner) = boot();
    register_corpus(addr);
    let (status, body) = send(addr, "POST", "/match/topk?source=po1&k=10", b"");
    assert_eq!(status, 200, "{body}");
    let (session, trees) = library();
    let po1 = trees.iter().find(|(n, _)| *n == "po1").unwrap().1.clone();
    let source = session.prepare(&po1);
    let mut expected: Vec<(&str, f64)> = trees
        .iter()
        .filter(|(name, _)| *name != "po1")
        .map(|(name, tree)| {
            let target = session.prepare(tree);
            (*name, session.hybrid(&source, &target).total_qom)
        })
        .collect();
    expected.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    // Ranking order and every QoM are bit-identical.
    let mut cursor = 0usize;
    for (name, qom) in &expected {
        let entry = format!(r#"{{"target":"{name}","total_qom":{}}}"#, fmt_f64(*qom));
        let at = body[cursor..]
            .find(&entry)
            .unwrap_or_else(|| panic!("missing/unordered entry {entry} in {body}"));
        cursor += at + entry.len();
    }
    assert!(
        expected[0].1 > expected.last().unwrap().1,
        "corpus produces a non-trivial ranking"
    );
    shutdown.shutdown();
    runner.join().expect("server thread");
}

#[test]
fn error_paths_404_400_405_413() {
    let (addr, shutdown, runner) = boot();
    register_corpus(addr);
    let (status, body) = send(addr, "GET", "/no-such-path", b"");
    assert_eq!(status, 404);
    assert!(body.contains("not_found"));
    let (status, body) = send(addr, "POST", "/match?source=po1&target=ghost", b"");
    assert_eq!(status, 404);
    assert!(body.contains("unknown_schema"));
    let (status, body) = send(addr, "POST", "/match?source=po1", b"");
    assert_eq!(status, 400);
    assert!(body.contains("missing_parameter"));
    let (status, body) = send(
        addr,
        "POST",
        "/match?source=po1&target=po2&algo=psychic",
        b"",
    );
    assert_eq!(status, 400);
    assert!(body.contains("unknown_algo"));
    let (status, _) = send(addr, "PATCH", "/schemas/po1", b"");
    assert_eq!(status, 405);
    let (status, body) = send(addr, "DELETE", "/schemas/ghost", b"");
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("unknown_schema"), "{body}");
    let (status, body) = send(addr, "PUT", "/schemas/bad%20name", b"<x/>");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("invalid_name"));
    shutdown.shutdown();
    runner.join().expect("server thread");

    // A server with tight limits rejects with 413 and reports the first
    // offending byte offset in the typed error.
    let (addr, shutdown, runner) = boot_with(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 2,
        limits: IngestLimits {
            max_depth: 2,
            ..IngestLimits::default()
        },
        ..ServerConfig::default()
    });
    let (status, body) = send(addr, "PUT", "/schemas/po1", corpus::po1_xsd().as_bytes());
    assert_eq!(status, 413, "{body}");
    assert!(body.contains("limit_exceeded"), "{body}");
    assert!(body.contains("first offending byte at offset"), "{body}");
    let (_, metrics) = send(addr, "GET", "/metrics", b"");
    assert!(
        metrics.contains("qmatch_rejected_by_limits_total 1"),
        "{metrics}"
    );
    // Oversized bodies are refused at the wire before parsing.
    let (addr2, shutdown2, runner2) = boot_with(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 2,
        limits: IngestLimits {
            max_input_bytes: 64,
            ..IngestLimits::default()
        },
        ..ServerConfig::default()
    });
    let (status, body) = send(addr2, "PUT", "/schemas/po1", corpus::po1_xsd().as_bytes());
    assert_eq!(status, 413, "{body}");
    assert!(body.contains("max_input_bytes"), "{body}");
    shutdown.shutdown();
    runner.join().expect("server thread");
    shutdown2.shutdown();
    runner2.join().expect("server thread");
}

#[test]
fn concurrent_clients_get_byte_identical_responses() {
    let (addr, shutdown, runner) = boot();
    register_corpus(addr);
    let (status, baseline) = send(addr, "POST", "/match?source=po1&target=po2", b"");
    assert_eq!(status, 200);
    let workers: Vec<_> = (0..8)
        .map(|_| {
            let baseline = baseline.clone();
            std::thread::spawn(move || {
                for _ in 0..5 {
                    let (status, body) = send(addr, "POST", "/match?source=po1&target=po2", b"");
                    assert_eq!(status, 200);
                    assert_eq!(body, baseline, "concurrent response diverged");
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client thread");
    }
    // Repeated matching drove the shared label cache: the hit rate metric
    // must be visible and positive.
    let (status, metrics) = send(addr, "GET", "/metrics", b"");
    assert_eq!(status, 200);
    let rate_line = metrics
        .lines()
        .find(|l| l.starts_with("qmatch_label_cache_hit_rate "))
        .expect("hit rate metric");
    let rate: f64 = rate_line
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .expect("numeric rate");
    assert!(rate > 0.0, "label cache never hit: {metrics}");
    assert!(
        metrics.contains("qmatch_requests{endpoint=\"match\"} 41"),
        "{metrics}"
    );
    assert!(metrics.contains("qmatch_bytes_ingested_total"), "{metrics}");
    shutdown.shutdown();
    let summary = runner.join().expect("server thread");
    assert!(summary.contains("match=41"), "{summary}");
}

#[test]
fn v1_surface_request_ids_and_phase_metrics() {
    let (addr, shutdown, runner) = boot();
    // Registration through the versioned surface.
    for (name, xsd) in CORPUS {
        let (status, _, body) = send_raw(
            addr,
            "PUT",
            &format!("/v1/schemas/{name}"),
            "",
            xsd().as_bytes(),
        );
        assert_eq!(status, 201, "registering {name} via /v1: {body}");
    }
    // The unversioned alias answers identically but is marked deprecated.
    let (status, head, body) = send_raw(addr, "GET", "/schemas", "", b"");
    assert_eq!(status, 200);
    assert!(head.contains("deprecation: true"), "{head}");
    assert!(
        head.contains("link: </v1/schemas>; rel=\"successor-version\""),
        "{head}"
    );
    let (_, head_v1, body_v1) = send_raw(addr, "GET", "/v1/schemas", "", b"");
    assert!(!head_v1.contains("deprecation:"), "{head_v1}");
    assert_eq!(body, body_v1, "alias and versioned bodies must agree");
    assert!(body.contains("deprecated aliases"), "{body}");
    // Server-minted request ids ride on every response...
    assert!(head.contains("x-request-id: q-"), "{head}");
    // ...and a client-supplied id is echoed verbatim.
    let (status, head, _) = send_raw(
        addr,
        "POST",
        "/v1/match?source=po1&target=po2",
        "x-request-id: trace-42\r\n",
        b"",
    );
    assert_eq!(status, 200);
    assert!(head.contains("x-request-id: trace-42"), "{head}");
    // The match drove the instrumented pipeline: per-phase series appear
    // in the metrics exposition.
    let (status, _, metrics) = send_raw(addr, "GET", "/v1/metrics", "", b"");
    assert_eq!(status, 200);
    for phase in ["prepare", "labels", "hybrid_wave", "request"] {
        assert!(
            metrics.contains(&format!("qmatch_phase_count{{phase=\"{phase}\"}}")),
            "missing phase {phase}: {metrics}"
        );
    }
    assert!(
        metrics.contains("qmatch_phase_wall_us_bucket{phase=\"hybrid_wave\",le=\"+Inf\"}"),
        "{metrics}"
    );
    shutdown.shutdown();
    let summary = runner.join().expect("server thread");
    assert!(summary.contains("request ids q-1.."), "{summary}");
    assert!(summary.contains("phases (count/wall):"), "{summary}");
}

#[test]
fn delete_and_hot_update_evolution() {
    let (addr, shutdown, runner) = boot();
    register_corpus(addr);
    // Baseline response for a pair that will ride through a hot update.
    let (status, baseline) = send(addr, "POST", "/v1/match?source=po1&target=po2", b"");
    assert_eq!(status, 200, "{baseline}");
    // Re-PUT of a resident schema takes the diff-guided evolve fast path;
    // the served bytes must not change (incremental = bit-identical).
    let (status, body) = send(addr, "PUT", "/v1/schemas/po1", corpus::po1_xsd().as_bytes());
    assert_eq!(status, 200, "{body}");
    assert!(body.contains(r#""replaced":true"#), "{body}");
    let (status, after) = send(addr, "POST", "/v1/match?source=po1&target=po2", b"");
    assert_eq!(status, 200);
    assert_eq!(baseline, after, "hot update must not change match bytes");
    let (_, metrics) = send(addr, "GET", "/v1/metrics", b"");
    let evolve_line = metrics
        .lines()
        .find(|l| l.starts_with("qmatch_evolve_incremental_total "))
        .expect("evolve metric");
    let evolved: u64 = evolve_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(evolved >= 1, "{metrics}");
    assert!(
        metrics.contains("qmatch_phase_count{phase=\"diff\"}"),
        "the evolve path records Diff spans: {metrics}"
    );
    // DELETE removes the schema from listings, matching, and the index.
    let (status, body) = send(addr, "DELETE", "/v1/schemas/book", b"");
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, r#"{"name":"book","deleted":true}"#);
    let (_, listing) = send(addr, "GET", "/v1/schemas", b"");
    assert!(listing.contains(r#""count":5"#), "{listing}");
    assert!(!listing.contains(r#""name":"book""#), "{listing}");
    let (status, body) = send(addr, "POST", "/v1/match?source=book&target=po1", b"");
    assert_eq!(status, 404, "{body}");
    // Deleting twice is a 404; re-registering afterwards is a fresh 201.
    let (status, _) = send(addr, "DELETE", "/v1/schemas/book", b"");
    assert_eq!(status, 404);
    let (status, _) = send(
        addr,
        "PUT",
        "/v1/schemas/book",
        corpus::book_xsd().as_bytes(),
    );
    assert_eq!(status, 201);
    let (_, metrics) = send(addr, "GET", "/v1/metrics", b"");
    assert!(
        metrics.contains("qmatch_schema_deletes_total 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("qmatch_requests{endpoint=\"schemas_delete\"} 2"),
        "{metrics}"
    );
    shutdown.shutdown();
    runner.join().expect("server thread");
}

#[test]
fn keep_alive_serves_sequential_requests_on_one_connection() {
    let (addr, shutdown, runner) = boot();
    let mut stream = TcpStream::connect(addr).expect("connect");
    let read_one = |stream: &mut TcpStream| -> (u16, String) {
        let mut raw = Vec::new();
        let mut byte = [0u8; 1];
        // Read headers byte-wise until the separator, then the body by
        // its declared length (keep-alive framing).
        while !raw.ends_with(b"\r\n\r\n") {
            stream.read_exact(&mut byte).expect("header byte");
            raw.push(byte[0]);
        }
        let head = String::from_utf8(raw).expect("UTF-8 head");
        let status: u16 = head.split(' ').nth(1).unwrap().parse().unwrap();
        let length: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("content-length: "))
            .expect("content-length")
            .trim()
            .parse()
            .unwrap();
        let mut body = vec![0u8; length];
        stream.read_exact(&mut body).expect("body");
        (status, String::from_utf8(body).unwrap())
    };
    for _ in 0..3 {
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n")
            .expect("write");
        let (status, body) = read_one(&mut stream);
        assert_eq!(status, 200);
        assert_eq!(body, r#"{"status":"ok"}"#);
    }
    drop(stream);
    shutdown.shutdown();
    let summary = runner.join().expect("server thread");
    assert!(summary.contains("healthz=3"), "{summary}");
}
