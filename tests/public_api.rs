//! Public-surface snapshot: every `qmatch::prelude` export is exercised by
//! name, so an accidental removal, rename, or signature change of the v1
//! API breaks this test before it breaks a downstream user.
//!
//! Organized to mirror the prelude's own grouping: parsing, configuration,
//! sessions and algorithms, mapping and evaluation, and tracing. The
//! deprecated one-shot wrappers get a single pinned call at the end — they
//! are still part of the surface until removal.

use qmatch::prelude::*;
use std::sync::Arc;

const SOURCE: &str = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="PO"><xs:complexType><xs:sequence>
    <xs:element name="OrderNo" type="xs:integer"/>
    <xs:element name="ShipTo" type="xs:string"/>
  </xs:sequence></xs:complexType></xs:element>
</xs:schema>"#;

const TARGET: &str = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="PurchaseOrder"><xs:complexType><xs:sequence>
    <xs:element name="OrderNo" type="xs:integer"/>
    <xs:element name="ShipToAddr" type="xs:string"/>
  </xs:sequence></xs:complexType></xs:element>
</xs:schema>"#;

fn trees() -> (SchemaTree, SchemaTree) {
    let source = SchemaTree::compile(&parse_schema(SOURCE).unwrap()).unwrap();
    let target = SchemaTree::compile(&parse_schema(TARGET).unwrap()).unwrap();
    (source, target)
}

#[test]
fn configuration_surface() {
    // MatchConfig + Weights, plus the validated builder path.
    let default_config = MatchConfig::default();
    let weights = Weights::new(0.3, 0.2, 0.1, 0.4).unwrap();
    let built: MatchConfig = MatchConfig::builder()
        .weight_vector(weights)
        .threshold(0.5)
        .build()
        .unwrap();
    assert_eq!(built.weights, default_config.weights);
    assert_eq!(built.threshold, 0.5);

    // The builder type itself is nameable (for helper fns that thread it).
    let staged: MatchConfigBuilder = MatchConfig::builder().weights(0.25, 0.25, 0.25, 0.25);
    assert!(staged.build().is_ok());

    // ConfigError distinguishes bad weights from a bad threshold.
    let bad_weights: ConfigError = MatchConfig::builder()
        .weights(0.9, 0.9, 0.9, 0.9)
        .build()
        .unwrap_err();
    assert!(matches!(bad_weights, ConfigError::Weights(_)));
    let bad_threshold = MatchConfig::builder().threshold(1.5).build().unwrap_err();
    assert!(matches!(
        bad_threshold,
        ConfigError::Threshold { value } if value == 1.5
    ));
    assert!(!bad_threshold.to_string().is_empty());
}

#[test]
fn session_and_algorithm_surface() {
    let (source, target) = trees();
    let session = MatchSession::new(MatchConfig::default());
    let sp: PreparedSchema = session.prepare(&source);
    let tp: PreparedSchema = session.prepare(&target);

    // Every Algorithm variant runs through the one entry point.
    for algorithm in [
        Algorithm::Hybrid,
        Algorithm::Linguistic,
        Algorithm::Structural,
        Algorithm::TreeEdit,
        Algorithm::Composite {
            components: vec![Component::Linguistic, Component::Structural],
            aggregation: Aggregation::Average,
        },
    ] {
        let outcome: MatchOutcome = session.run(&algorithm, &sp, &tp).unwrap();
        assert!((0.0..=1.0).contains(&outcome.total_qom));
        assert_eq!(outcome.matrix.rows(), source.len());
    }

    // Invalid composites surface as CompositeError, not panics.
    let invalid = Algorithm::Composite {
        components: vec![Component::Hybrid],
        aggregation: Aggregation::Weighted(vec![1.0, 2.0]),
    };
    let error: CompositeError = session.run(&invalid, &sp, &tp).unwrap_err();
    assert!(!error.to_string().is_empty());
}

#[test]
fn mapping_and_evaluation_surface() {
    let (source, target) = trees();
    let session = MatchSession::new(MatchConfig::default());
    let (sp, tp) = (session.prepare(&source), session.prepare(&target));
    let outcome = session.run(&Algorithm::Hybrid, &sp, &tp).unwrap();

    let mapping: Mapping = extract_mapping(&outcome.matrix, 0.5);
    assert!(!mapping.is_empty(), "OrderNo matches OrderNo");

    let mut gold = qmatch::core::eval::GoldStandard::new();
    gold.add("PO/OrderNo", "PurchaseOrder/OrderNo");
    let quality: MatchQuality = evaluate(&mapping, &source, &target, &gold);
    assert_eq!(quality.true_positives, 1);
    assert!(quality.recall > 0.0);
}

#[test]
fn trace_surface() {
    let (source, target) = trees();

    // Recorder: the in-memory sink behind `qmatch match --trace`.
    let recorder = Arc::new(Recorder::default());
    let mut session = MatchSession::new(MatchConfig::default());
    session.set_trace_sink(recorder.clone());
    let (sp, tp) = (session.prepare(&source), session.prepare(&target));
    session.run(&Algorithm::Hybrid, &sp, &tp).unwrap();

    let spans: Vec<Span> = recorder.spans();
    assert!(spans.iter().any(|s| s.phase == Phase::HybridWave));
    let stats: PhaseStats = recorder.phase_stats(Phase::Prepare);
    assert_eq!(stats.count, 2);
    assert!(recorder.report().contains("prepare"));

    // Phase: the full stable name set.
    assert_eq!(Phase::ALL.len(), Phase::COUNT);

    // Trace + NullSink: the disabled fast path reads no clock.
    let null = Trace::new(Arc::new(NullSink));
    assert!(!null.is_enabled());
    assert_eq!(null.start(), None);

    // TraceSink is implementable by downstream code.
    struct CountingSink(std::sync::atomic::AtomicU64);
    impl TraceSink for CountingSink {
        fn record(&self, _span: &Span) {
            self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }
    let counting = Arc::new(CountingSink(std::sync::atomic::AtomicU64::new(0)));
    let trace = Trace::new(counting.clone());
    trace.record(&Span::empty(Phase::Select));
    assert_eq!(counting.0.load(std::sync::atomic::Ordering::Relaxed), 1);
}

#[test]
#[allow(deprecated)]
fn deprecated_one_shot_wrappers_still_answer() {
    let (source, target) = trees();
    let config = MatchConfig::default();
    let hybrid = hybrid_match(&source, &target, &config);
    let linguistic = linguistic_match(&source, &target, &config);
    let structural = structural_match(&source, &target, &config);
    for outcome in [&hybrid, &linguistic, &structural] {
        assert!((0.0..=1.0).contains(&outcome.total_qom));
    }

    // And they agree with the session path they now delegate to.
    let session = MatchSession::new(config);
    let (sp, tp) = (session.prepare(&source), session.prepare(&target));
    let via_session = session.run(&Algorithm::Hybrid, &sp, &tp).unwrap();
    assert_eq!(hybrid.matrix, via_session.matrix);
}
