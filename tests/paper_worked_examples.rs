//! The paper's §2.1/§2.2 worked examples, encoded as tests against the
//! Figure 1 (`PO`) and Figure 2 (`Purchase Order`) schemas. Each test quotes
//! the claim it verifies, so the taxonomy implementation stays anchored to
//! the prose.

#![allow(deprecated)] // the one-shot wrappers stay covered end-to-end until removal

use qmatch::core::explain::explain_pair;
use qmatch::core::taxonomy::{AxisGrade, CoverageGrade, MatchCategory};
use qmatch::datasets::figures::{po_fig1, purchase_order_fig2};
use qmatch::lexicon::{LabelGrade, NameMatcher};
use qmatch::prelude::*;
use qmatch::xsd::NodeId;

fn trees() -> (SchemaTree, SchemaTree) {
    (po_fig1(), purchase_order_fig2())
}

fn node(tree: &SchemaTree, path: &str) -> NodeId {
    tree.find_by_path(path)
        .unwrap_or_else(|| panic!("missing path {path:?} in {}", tree.name()))
}

#[test]
fn orderno_labels_match_exactly() {
    // §2.1: "the label of the element OrderNo in the PO schema matches
    // exactly the label of element OrderNo in the Purchase Order schema."
    let matcher = NameMatcher::with_default_thesaurus();
    assert_eq!(
        matcher.compare("OrderNo", "OrderNo").grade,
        LabelGrade::Exact
    );
}

#[test]
fn uom_is_a_relaxed_acronym_match() {
    // §2.1: "the label of the element Unit Of Measure in the PO schema has
    // an acronym match with the label of element UOM ... denoting a relaxed
    // match along the label axis."
    let matcher = NameMatcher::with_default_thesaurus();
    let m = matcher.compare("UnitOfMeasure", "UOM");
    assert_eq!(m.grade, LabelGrade::Relaxed);
}

#[test]
fn quantity_vs_qty_is_a_relaxed_leaf_match() {
    // §2.2: "The match between the leaf elements Quantity ... and Qty ... is
    // said to be relaxed as the label Quantity has a relaxed match with the
    // label Qty. Their set of properties match exactly."
    let (po, order) = trees();
    let e = explain_pair(
        &po,
        &order,
        node(&po, "PO/PurchaseInfo/Lines/Quantity"),
        node(&order, "PurchaseOrder/Items/Qty"),
        &MatchConfig::default(),
    );
    assert_eq!(e.label.grade, AxisGrade::Relaxed, "{e}");
    assert!(e.qom > 0.85 && e.qom < 1.0, "relaxed leaf QoM: {}", e.qom);
}

#[test]
fn orderno_pair_is_an_exact_leaf_match() {
    // §2.2: "the match between the two leaf elements OrderNo ... and ...
    // OrderNo ... is exact as their labels and properties match exactly."
    let (po, order) = trees();
    let e = explain_pair(
        &po,
        &order,
        node(&po, "PO/OrderNo"),
        node(&order, "PurchaseOrder/OrderNo"),
        &MatchConfig::default(),
    );
    assert_eq!(e.category, MatchCategory::TotalExact, "{e}");
    assert!((e.qom - 1.0).abs() < 1e-9);
}

#[test]
fn lines_vs_items_is_total_relaxed() {
    // §2.2: "the QoM of the match between Lines and Items is said to be
    // total relaxed along the children axis. The elements Lines and Items
    // have a relaxed match along the label and level axis (they are at
    // different levels in the schema tree) ... there is a total relaxed
    // match between the elements Lines and Items."
    let (po, order) = trees();
    let e = explain_pair(
        &po,
        &order,
        node(&po, "PO/PurchaseInfo/Lines"),
        node(&order, "PurchaseOrder/Items"),
        &MatchConfig::default(),
    );
    assert_eq!(e.label.grade, AxisGrade::Relaxed, "{e}");
    assert_eq!(e.level.grade, AxisGrade::Relaxed, "different levels: {e}");
    assert_eq!(e.children.coverage, CoverageGrade::TotalRelaxed, "{e}");
    assert_eq!(e.category, MatchCategory::TotalRelaxed, "{e}");
    // All three children of Lines find partners above the threshold.
    assert!(e.children.children.iter().all(|c| c.kept), "{e}");
}

#[test]
fn item_matches_item_hash() {
    // §2.2: "the child Item of Lines has an exact match with the child
    // Item# of the element Items" — Item# tokenizes to (item, number), so
    // under this lexicon the pair grades relaxed-but-strong rather than
    // exact; it must still be Item's best partner among Items' children.
    let (po, order) = trees();
    let outcome = hybrid_match(&po, &order, &MatchConfig::default());
    let item = node(&po, "PO/PurchaseInfo/Lines/Item");
    let best = order
        .node(node(&order, "PurchaseOrder/Items"))
        .children
        .iter()
        .max_by(|a, b| {
            outcome
                .matrix
                .get(item, **a)
                .total_cmp(&outcome.matrix.get(item, **b))
        })
        .copied()
        .unwrap();
    assert_eq!(order.node(best).label, "Item#");
}

#[test]
fn purchaseinfo_matches_the_purchase_order_root() {
    // §2.2: "Comparing PurchaseInfo with the node Purchase Order ... the two
    // nodes PurchaseInfo and Purchase Order have a total relaxed match along
    // the children axis. There is no level match between the two nodes.
    // Hence the node PurchaseInfo has a total relaxed match with the node
    // Purchase Order."
    let (po, order) = trees();
    let config = MatchConfig::default();
    let e = explain_pair(
        &po,
        &order,
        node(&po, "PO/PurchaseInfo"),
        order.root_id(),
        &config,
    );
    assert_eq!(e.level.grade, AxisGrade::Relaxed, "no level match: {e}");
    // Every PurchaseInfo child (BillingAddr, ShippingAddr, Lines) finds a
    // partner among Purchase Order's children.
    assert!(e.children.children.iter().all(|c| c.kept), "{e}");
    assert!(e.children.coverage.is_total(), "{e}");
    assert_eq!(e.category, MatchCategory::TotalRelaxed, "{e}");
}

#[test]
fn po_root_match_is_total_relaxed() {
    // §2.2: "Combining the matches along the different axes, the QoM for the
    // match between the PO and Purchase root nodes is said to be total
    // relaxed."
    use qmatch::core::algorithms::hybrid_root_category;
    let (po, order) = trees();
    assert_eq!(
        hybrid_root_category(&po, &order, &MatchConfig::default()),
        MatchCategory::TotalRelaxed
    );
}

#[test]
fn billing_and_shipping_addresses_find_their_counterparts() {
    // §2.2: "The children (leaf nodes) BillingAddr and ShippingAddr have a
    // relaxed match with the leaf nodes BillTo and ShipTo."
    let (po, order) = trees();
    let config = MatchConfig::default();
    let outcome = hybrid_match(&po, &order, &config);
    let mapping = extract_mapping(&outcome.matrix, config.weights.acceptance_threshold());
    let pairs = mapping.to_path_pairs(&po, &order);
    assert!(
        pairs.contains(&(
            "PO/PurchaseInfo/BillingAddr".into(),
            "PurchaseOrder/BillTo".into()
        )),
        "{pairs:?}"
    );
    assert!(
        pairs.contains(&(
            "PO/PurchaseInfo/ShippingAddr".into(),
            "PurchaseOrder/ShipTo".into()
        )),
        "{pairs:?}"
    );
}

#[test]
fn total_exact_tops_the_goodness_hierarchy() {
    // §3: "a total exact is clearly a better match than a total relaxed or
    // the other classifications" — and "The highest match classification,
    // total exact, will always result in a QoM(n1,n2) = 1."
    let (po, _) = trees();
    let outcome = hybrid_match(&po, &po, &MatchConfig::default());
    assert!((outcome.total_qom - 1.0).abs() < 1e-12);
    assert!(MatchCategory::TotalExact.rank() > MatchCategory::TotalRelaxed.rank());
    assert!(MatchCategory::TotalRelaxed.rank() > MatchCategory::PartialRelaxed.rank());
}

#[test]
fn min_occurs_zero_generalizes_one() {
    // §2.1: "minOccurs = 0 is a generalization of the constraint
    // minOccurs = 1" — a relaxed property match.
    use qmatch::core::props::compare_properties;
    use qmatch::xsd::Properties;
    let a = Properties {
        min_occurs: 0,
        ..Properties::default()
    };
    let b = Properties {
        min_occurs: 1,
        ..Properties::default()
    };
    let m = compare_properties(&a, &b);
    assert_eq!(m.grade, AxisGrade::Relaxed);
}
