//! End-to-end durability tests: a server with a `data_dir` must come back
//! from a restart serving *byte-identical* listings and rankings — via WAL
//! replay, via compacted snapshots, and with a torn (truncated) WAL tail.
//!
//! Restarts here go through [`ShutdownHandle`] rather than a real signal:
//! the signal flag is a process-wide static, so raising `SIGTERM`
//! in-process would stop every other test's server too. The CI smoke job
//! covers the real kill-and-restart path.

use qmatch::datasets::corpus;
use qmatch_serve::{Server, ServerConfig, ShutdownHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

type XsdSource = fn() -> &'static str;

const CORPUS: [(&str, XsdSource); 6] = [
    ("po1", corpus::po1_xsd),
    ("po2", corpus::po2_xsd),
    ("article", corpus::article_xsd),
    ("book", corpus::book_xsd),
    ("dcmd_item", corpus::dcmd_item_xsd),
    ("dcmd_ord", corpus::dcmd_ord_xsd),
];

/// A unique, deterministic scratch directory per test invocation.
fn tempdir(tag: &str) -> PathBuf {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "qmatch-serve-persist-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn boot(config: ServerConfig) -> (SocketAddr, ShutdownHandle, std::thread::JoinHandle<String>) {
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = server.shutdown_handle();
    let runner = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, runner)
}

fn durable_config(dir: &std::path::Path) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 3,
        data_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    }
}

/// One request over a fresh connection (`Connection: close` framing).
fn send(addr: SocketAddr, method: &str, target: &str, body: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {target} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body).expect("write body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let head_end = text.find("\r\n\r\n").expect("header separator");
    let status: u16 = text
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, text[head_end + 4..].to_owned())
}

fn register_corpus(addr: SocketAddr) {
    for (name, xsd) in CORPUS {
        let (status, body) = send(
            addr,
            "PUT",
            &format!("/v1/schemas/{name}"),
            xsd().as_bytes(),
        );
        assert_eq!(status, 201, "registering {name}: {body}");
    }
}

/// The freshly-booted fingerprint of a registry: the `/v1/schemas` listing
/// and a top-k ranking. The listing embeds label-cache counters, so it is
/// only comparable across servers that have seen the same match traffic —
/// capture it *before* running any matches.
fn fingerprint(addr: SocketAddr) -> (String, String) {
    let (status, listing) = send(addr, "GET", "/v1/schemas", b"");
    assert_eq!(status, 200, "{listing}");
    let (status, topk) = send(addr, "POST", "/v1/match/topk?source=po1&k=10", b"");
    assert_eq!(status, 200, "{topk}");
    (listing, topk)
}

#[test]
fn registry_survives_a_restart_byte_identically() {
    let dir = tempdir("wal-replay");
    let (addr, shutdown, runner) = boot(durable_config(&dir));
    register_corpus(addr);
    let (listing, topk) = fingerprint(addr);
    assert!(listing.contains(r#""count":6"#), "{listing}");
    // Mixed match traffic after the fingerprint, so shutdown lands
    // mid-workload rather than on a quiet server.
    for (source, target) in [
        ("po1", "po2"),
        ("article", "book"),
        ("dcmd_item", "dcmd_ord"),
    ] {
        let (status, body) = send(
            addr,
            "POST",
            &format!("/v1/match?source={source}&target={target}"),
            b"",
        );
        assert_eq!(status, 200, "{body}");
    }
    // Every PUT was WAL-logged.
    let (_, metrics) = send(addr, "GET", "/v1/metrics", b"");
    let wal_line = metrics
        .lines()
        .find(|l| l.starts_with("qmatch_wal_bytes_total "))
        .expect("wal bytes metric");
    let wal_bytes: u64 = wal_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(wal_bytes > 0, "{metrics}");
    shutdown.shutdown();
    runner.join().expect("server thread");

    // Same data_dir, fresh process state: the WAL replays on boot.
    let (addr, shutdown, runner) = boot(durable_config(&dir));
    let (listing2, topk2) = fingerprint(addr);
    assert_eq!(listing, listing2, "listing must survive restart unchanged");
    assert_eq!(topk, topk2, "ranking must survive restart unchanged");
    // The restarted registry accepts further writes.
    let (status, _) = send(
        addr,
        "PUT",
        "/v1/schemas/extra",
        corpus::po1_xsd().as_bytes(),
    );
    assert_eq!(status, 201);
    let (_, listing3) = send(addr, "GET", "/v1/schemas", b"");
    assert!(listing3.contains(r#""count":7"#), "{listing3}");
    shutdown.shutdown();
    runner.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_snapshots_survive_restart() {
    let dir = tempdir("compaction");
    // snapshot_bytes: 1 — every PUT trips the compaction threshold, so the
    // surviving image lives in registry.snap and the WAL stays truncated.
    let config = || ServerConfig {
        snapshot_bytes: 1,
        ..durable_config(&dir)
    };
    let (addr, shutdown, runner) = boot(config());
    register_corpus(addr);
    let (listing, topk) = fingerprint(addr);
    shutdown.shutdown();
    runner.join().expect("server thread");
    let snap = std::fs::read(dir.join("registry.snap")).expect("snapshot written");
    assert_eq!(&snap[..8], qmatch_serve::persist::SNAP_MAGIC);
    let wal = std::fs::read(dir.join("registry.wal")).expect("wal exists");
    assert_eq!(wal.len(), 8, "compaction truncates the WAL to its header");

    let (addr, shutdown, runner) = boot(config());
    let (listing2, topk2) = fingerprint(addr);
    assert_eq!(listing, listing2, "snapshot replay must be byte-identical");
    assert_eq!(topk, topk2);
    shutdown.shutdown();
    runner.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deletions_survive_restart_via_tombstones() {
    let dir = tempdir("tombstones");
    let (addr, shutdown, runner) = boot(durable_config(&dir));
    register_corpus(addr);
    for name in ["book", "dcmd_item"] {
        let (status, body) = send(addr, "DELETE", &format!("/v1/schemas/{name}"), b"");
        assert_eq!(status, 200, "{body}");
    }
    let (listing, topk) = fingerprint(addr);
    assert!(listing.contains(r#""count":4"#), "{listing}");
    shutdown.shutdown();
    runner.join().expect("server thread");

    // The tombstones replay: deleted schemas stay gone after a restart,
    // and the surviving registry is byte-identical.
    let (addr, shutdown, runner) = boot(durable_config(&dir));
    let (listing2, topk2) = fingerprint(addr);
    assert_eq!(listing, listing2, "tombstoned listing must replay");
    assert_eq!(topk, topk2);
    assert!(!listing2.contains(r#""name":"book""#), "{listing2}");
    // A deleted name can be re-registered after the restart.
    let (status, _) = send(
        addr,
        "PUT",
        "/v1/schemas/book",
        corpus::book_xsd().as_bytes(),
    );
    assert_eq!(status, 201);
    shutdown.shutdown();
    runner.join().expect("server thread");

    // And the delete → re-put sequence replays in order (the re-put wins).
    let (addr, shutdown, runner) = boot(durable_config(&dir));
    let (_, listing3) = send(addr, "GET", "/v1/schemas", b"");
    assert!(listing3.contains(r#""count":5"#), "{listing3}");
    assert!(listing3.contains(r#""name":"book""#), "{listing3}");
    shutdown.shutdown();
    runner.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_drops_tombstones_from_the_snapshot() {
    let dir = tempdir("tombstone-compaction");
    // Every write trips compaction, so the snapshot is rewritten after
    // each PUT/DELETE and must exclude deleted schemas outright.
    let config = || ServerConfig {
        snapshot_bytes: 1,
        ..durable_config(&dir)
    };
    let (addr, shutdown, runner) = boot(config());
    register_corpus(addr);
    let (status, _) = send(addr, "DELETE", "/v1/schemas/article", b"");
    assert_eq!(status, 200);
    let (listing, topk) = fingerprint(addr);
    shutdown.shutdown();
    runner.join().expect("server thread");
    let wal = std::fs::read(dir.join("registry.wal")).expect("wal exists");
    assert_eq!(wal.len(), 8, "the tombstone was compacted away");

    let (addr, shutdown, runner) = boot(config());
    let (listing2, topk2) = fingerprint(addr);
    assert_eq!(listing, listing2, "{listing2}");
    assert_eq!(topk, topk2);
    assert!(!listing2.contains(r#""name":"article""#), "{listing2}");
    shutdown.shutdown();
    runner.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn group_commit_window_keeps_clean_shutdowns_lossless() {
    let dir = tempdir("fsync-batch");
    // A large window: most appends defer their fsync, the shutdown-path
    // sync flushes the tail, and replay still sees every record.
    let config = || ServerConfig {
        fsync_batch: std::time::Duration::from_millis(5_000),
        ..durable_config(&dir)
    };
    let (addr, shutdown, runner) = boot(config());
    register_corpus(addr);
    let (status, _) = send(addr, "DELETE", "/v1/schemas/dcmd_ord", b"");
    assert_eq!(status, 200);
    let (listing, topk) = fingerprint(addr);
    shutdown.shutdown();
    runner.join().expect("server thread");

    let (addr, shutdown, runner) = boot(config());
    let (listing2, topk2) = fingerprint(addr);
    assert_eq!(listing, listing2, "group commit must not lose acked writes");
    assert_eq!(topk, topk2);
    shutdown.shutdown();
    runner.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_tail_is_dropped_and_the_prefix_recovered() {
    let dir = tempdir("torn-tail");
    let (addr, shutdown, runner) = boot(durable_config(&dir));
    register_corpus(addr);
    let (listing, topk) = fingerprint(addr);
    shutdown.shutdown();
    runner.join().expect("server thread");

    // Simulate a crash mid-append: a record header promising more bytes
    // than the file holds.
    let wal_path = dir.join("registry.wal");
    let before = std::fs::read(&wal_path).expect("wal exists").len() as u64;
    let mut wal = std::fs::OpenOptions::new()
        .append(true)
        .open(&wal_path)
        .expect("open wal");
    wal.write_all(&[0x40, 0, 0, 0, 0x40, 0, 0, 0, 1, 2, 3])
        .expect("torn tail");
    drop(wal);

    let (addr, shutdown, runner) = boot(durable_config(&dir));
    let (listing2, topk2) = fingerprint(addr);
    assert_eq!(listing, listing2, "intact prefix must replay unchanged");
    assert_eq!(topk, topk2);
    // Recovery truncated the torn tail, so the next PUT appends to a
    // clean WAL end rather than after garbage.
    assert_eq!(
        std::fs::metadata(&wal_path).expect("wal exists").len(),
        before,
        "torn tail must be truncated away on recovery"
    );
    let (status, _) = send(
        addr,
        "PUT",
        "/v1/schemas/extra",
        corpus::po2_xsd().as_bytes(),
    );
    assert_eq!(status, 201);
    shutdown.shutdown();
    runner.join().expect("server thread");

    // And the post-recovery append itself replays.
    let (addr, shutdown, runner) = boot(durable_config(&dir));
    let (_, listing3) = send(addr, "GET", "/v1/schemas", b"");
    assert!(listing3.contains(r#""count":7"#), "{listing3}");
    assert!(listing3.contains(r#""name":"extra""#), "{listing3}");
    shutdown.shutdown();
    runner.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}
