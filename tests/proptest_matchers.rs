//! Property-based tests over randomly generated schema trees: the invariants
//! every matcher must hold regardless of input shape.

use proptest::prelude::*;
use qmatch::core::algorithms::tree_edit_match;
use qmatch::prelude::*;
use qmatch::xsd::SchemaTree;

/// Strategy: a random tree as `(label, parent)` entries valid for
/// `SchemaTree::from_labels` (parents always precede children).
fn tree_strategy(max_nodes: usize) -> impl Strategy<Value = SchemaTree> {
    let label = "[A-Za-z][A-Za-z0-9]{0,9}";
    proptest::collection::vec((label, any::<proptest::sample::Index>()), 1..max_nodes).prop_map(
        |entries| {
            let mut labels: Vec<(String, Option<usize>)> = Vec::with_capacity(entries.len());
            for (i, (label, parent_idx)) in entries.into_iter().enumerate() {
                let parent = if i == 0 {
                    None
                } else {
                    Some(parent_idx.index(i))
                };
                labels.push((label, parent));
            }
            let borrowed: Vec<(&str, Option<usize>)> =
                labels.iter().map(|(l, p)| (l.as_str(), *p)).collect();
            SchemaTree::from_labels("random", &borrowed)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hybrid_scores_stay_in_unit_range(
        a in tree_strategy(24),
        b in tree_strategy(24),
    ) {
        let outcome = hybrid_match(&a, &b, &MatchConfig::default());
        outcome.matrix.assert_normalized();
        prop_assert!((0.0..=1.0).contains(&outcome.total_qom));
    }

    #[test]
    fn structural_scores_stay_in_unit_range(
        a in tree_strategy(24),
        b in tree_strategy(24),
    ) {
        let outcome = structural_match(&a, &b, &MatchConfig::default());
        outcome.matrix.assert_normalized();
    }

    #[test]
    fn linguistic_scores_stay_in_unit_range(
        a in tree_strategy(24),
        b in tree_strategy(24),
    ) {
        let outcome = linguistic_match(&a, &b, &MatchConfig::default());
        outcome.matrix.assert_normalized();
    }

    #[test]
    fn tree_edit_scores_stay_in_unit_range(
        a in tree_strategy(16),
        b in tree_strategy(16),
    ) {
        let outcome = tree_edit_match(&a, &b, &MatchConfig::default());
        outcome.matrix.assert_normalized();
    }

    #[test]
    fn self_match_is_always_perfect(a in tree_strategy(24)) {
        let config = MatchConfig::default();
        prop_assert!((hybrid_match(&a, &a, &config).total_qom - 1.0).abs() < 1e-9);
        prop_assert!((structural_match(&a, &a, &config).total_qom - 1.0).abs() < 1e-9);
        prop_assert!((tree_edit_match(&a, &a, &config).total_qom - 1.0).abs() < 1e-9);
        // The flat linguistic total is a mean of per-node bests, all 1.0.
        prop_assert!((linguistic_match(&a, &a, &config).total_qom - 1.0).abs() < 1e-9);
    }

    #[test]
    fn linguistic_matrix_is_transpose_symmetric(
        a in tree_strategy(12),
        b in tree_strategy(12),
    ) {
        // Label similarity has no direction.
        let config = MatchConfig::default();
        let ab = linguistic_match(&a, &b, &config);
        let ba = linguistic_match(&b, &a, &config);
        for (s, t, v) in ab.matrix.iter() {
            prop_assert!((v - ba.matrix.get(t, s)).abs() < 1e-9);
        }
    }

    #[test]
    fn mapping_extraction_is_injective_and_thresholded(
        a in tree_strategy(16),
        b in tree_strategy(16),
        threshold in 0.0f64..1.0,
    ) {
        let outcome = hybrid_match(&a, &b, &MatchConfig::default());
        let mapping = extract_mapping(&outcome.matrix, threshold);
        let mut sources = std::collections::HashSet::new();
        let mut targets = std::collections::HashSet::new();
        for c in &mapping.pairs {
            prop_assert!(c.score >= threshold);
            prop_assert!(sources.insert(c.source), "source used twice");
            prop_assert!(targets.insert(c.target), "target used twice");
        }
    }

    #[test]
    fn raising_the_threshold_never_grows_the_mapping(
        a in tree_strategy(16),
        b in tree_strategy(16),
    ) {
        let outcome = hybrid_match(&a, &b, &MatchConfig::default());
        let mut last = usize::MAX;
        for step in 0..=10 {
            let mapping = extract_mapping(&outcome.matrix, step as f64 / 10.0);
            prop_assert!(mapping.len() <= last);
            last = mapping.len();
        }
    }

    #[test]
    fn total_exact_weight_identity_holds_for_any_weights(
        l in 0.0f64..1.0,
        p in 0.0f64..1.0,
        h in 0.0f64..1.0,
    ) {
        // Normalize three free components into a unit-sum vector.
        let rest = l + p + h;
        let (l, p, h) = if rest > 1.0 { (l / rest, p / rest, h / rest) } else { (l, p, h) };
        let c = (1.0 - l - p - h).max(0.0);
        let weights = Weights::new(l, p, h, c);
        prop_assume!(weights.is_ok());
        let weights = weights.unwrap();
        prop_assert!((weights.qom(1.0, 1.0, 1.0, 1.0) - 1.0).abs() < 1e-9);
        prop_assert!((weights.leaf_qom(1.0, 1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn evaluation_counts_are_consistent(
        a in tree_strategy(12),
        b in tree_strategy(12),
    ) {
        use qmatch::core::mapping::path_of;
        let outcome = hybrid_match(&a, &b, &MatchConfig::default());
        let mapping = extract_mapping(&outcome.matrix, 0.6);
        // Gold = the first half of the predictions plus a fabricated miss.
        let mut gold = qmatch::core::GoldStandard::new();
        for c in mapping.pairs.iter().take(mapping.len() / 2) {
            gold.add(&path_of(&a, c.source), &path_of(&b, c.target));
        }
        gold.add("no/such/source", "no/such/target");
        let q = evaluate(&mapping, &a, &b, &gold);
        prop_assert_eq!(q.true_positives + q.false_positives, mapping.len());
        prop_assert_eq!(q.true_positives + q.false_negatives, gold.len());
        prop_assert!(q.precision >= 0.0 && q.precision <= 1.0);
        prop_assert!(q.recall >= 0.0 && q.recall <= 1.0);
        prop_assert!(q.overall <= 1.0);
    }
}
