//! Cross-crate integration tests: the full pipeline (XSD text → model →
//! schema tree → match → mapping → evaluation) plus pinned experiment
//! shapes, so a regression in any layer that would change the paper's
//! reproduced results fails CI rather than silently skewing EXPERIMENTS.md.

#![allow(deprecated)] // the one-shot wrappers stay covered end-to-end until removal

use qmatch::core::algorithms::{hybrid_root_category, tree_edit_match};
use qmatch::core::taxonomy::MatchCategory;
use qmatch::datasets::{corpus, figures, gold, table1_rows};
use qmatch::prelude::*;

fn hybrid_quality(
    source: &SchemaTree,
    target: &SchemaTree,
    real: &qmatch::core::GoldStandard,
) -> MatchQuality {
    let config = MatchConfig::default();
    let outcome = hybrid_match(source, target, &config);
    let mapping = extract_mapping(&outcome.matrix, config.weights.acceptance_threshold());
    evaluate(&mapping, source, target, real)
}

#[test]
fn table1_reconstruction_is_exact() {
    for row in table1_rows() {
        assert!(
            row.matches_paper(),
            "{}: paper ({},{}) vs repro ({},{})",
            row.name,
            row.paper_elements,
            row.paper_depth,
            row.actual_elements,
            row.actual_depth
        );
    }
}

#[test]
fn full_pipeline_from_raw_xsd_text() {
    // Parse from source text, not from the cached corpus accessors.
    let schema = parse_schema(corpus::po1_xsd()).expect("PO1 XSD parses");
    let source = SchemaTree::compile(&schema).expect("PO1 compiles");
    let schema = parse_schema(corpus::po2_xsd()).expect("PO2 XSD parses");
    let target = SchemaTree::compile(&schema).expect("PO2 compiles");

    let config = MatchConfig::default();
    let outcome = hybrid_match(&source, &target, &config);
    assert!(outcome.total_qom > 0.6 && outcome.total_qom < 1.0);

    let mapping = extract_mapping(&outcome.matrix, config.weights.acceptance_threshold());
    let quality = evaluate(&mapping, &source, &target, &gold::po_gold());
    assert!(
        quality.precision >= 0.85,
        "PO precision: {}",
        quality.precision
    );
    assert!(quality.recall >= 0.7, "PO recall: {}", quality.recall);
}

#[test]
fn figure5_shape_hybrid_wins_every_small_domain() {
    let config = MatchConfig::default();
    let cases = [
        ("PO", corpus::po1(), corpus::po2(), gold::po_gold()),
        ("BOOK", corpus::article(), corpus::book(), gold::book_gold()),
        (
            "DCMD",
            corpus::dcmd_item(),
            corpus::dcmd_ord(),
            gold::dcmd_gold(),
        ),
    ];
    for (name, source, target, real) in cases {
        let hybrid = hybrid_quality(&source, &target, &real).overall;
        let ling = {
            let out = linguistic_match(&source, &target, &config);
            evaluate(&extract_mapping(&out.matrix, 0.5), &source, &target, &real).overall
        };
        let structural = {
            let out = structural_match(&source, &target, &config);
            evaluate(&extract_mapping(&out.matrix, 0.95), &source, &target, &real).overall
        };
        assert!(
            hybrid >= ling && hybrid >= structural,
            "{name}: hybrid {hybrid} must beat linguistic {ling} and structural {structural}"
        );
    }
}

#[test]
fn figure6_shape_hybrid_finds_the_most_true_positives() {
    let config = MatchConfig::default();
    let cases = [
        ("PO", corpus::po1(), corpus::po2(), gold::po_gold()),
        ("BOOK", corpus::article(), corpus::book(), gold::book_gold()),
        (
            "DCMD",
            corpus::dcmd_item(),
            corpus::dcmd_ord(),
            gold::dcmd_gold(),
        ),
    ];
    for (name, source, target, real) in cases {
        let hybrid_tp = hybrid_quality(&source, &target, &real).true_positives;
        let ling_tp = {
            let out = linguistic_match(&source, &target, &config);
            evaluate(&extract_mapping(&out.matrix, 0.5), &source, &target, &real).true_positives
        };
        let structural_tp = {
            let out = structural_match(&source, &target, &config);
            evaluate(&extract_mapping(&out.matrix, 0.95), &source, &target, &real).true_positives
        };
        assert!(
            hybrid_tp >= ling_tp && hybrid_tp >= structural_tp,
            "{name}: hybrid TP {hybrid_tp} vs linguistic {ling_tp} / structural {structural_tp}"
        );
    }
}

#[test]
fn figure9_shape_hybrid_gravitates_to_the_higher_component() {
    let config = MatchConfig::default();
    let library = figures::library_fig7();
    let human = figures::human_fig8();
    let ling = linguistic_match(&library, &human, &config).total_qom;
    let structural = structural_match(&library, &human, &config).total_qom;
    let hybrid = hybrid_match(&library, &human, &config).total_qom;
    assert!(ling < 0.4, "linguistic must be low: {ling}");
    assert!(structural > 0.9, "structural must be high: {structural}");
    assert!(
        hybrid > ling && hybrid < structural,
        "hybrid {hybrid} between {ling} and {structural}"
    );
    assert!(
        hybrid >= (ling + structural) / 2.0 - 0.05,
        "hybrid {hybrid} gravitates toward the higher value"
    );
}

#[test]
fn worked_example_po_root_is_a_relaxed_match() {
    // §2.2 classifies the Figures 1/2 root match as total relaxed; our PO2
    // test schema adds an Item wrapper that PO1's Lines cannot cover, so the
    // faithful classification here is a *relaxed* (total or partial) match —
    // never exact, never none.
    let category = hybrid_root_category(&corpus::po1(), &corpus::po2(), &MatchConfig::default());
    assert!(
        matches!(
            category,
            MatchCategory::TotalRelaxed | MatchCategory::PartialRelaxed
        ),
        "got {category}"
    );
    // The figure-2 schema matches the figure-1 schema totally (every child
    // of PO finds a counterpart).
    let category = hybrid_root_category(
        &figures::po_fig1(),
        &figures::purchase_order_fig2(),
        &MatchConfig::default(),
    );
    assert!(
        matches!(category, MatchCategory::TotalRelaxed),
        "Figures 1/2 are the paper's total-relaxed example, got {category}"
    );
}

#[test]
fn self_match_is_perfect_for_every_corpus_schema() {
    let config = MatchConfig::default();
    for tree in [
        corpus::po1(),
        corpus::po2(),
        corpus::article(),
        corpus::book(),
        corpus::dcmd_item(),
        corpus::dcmd_ord(),
    ] {
        let outcome = hybrid_match(&tree, &tree, &config);
        assert!(
            (outcome.total_qom - 1.0).abs() < 1e-9,
            "{} self-match: {}",
            tree.name(),
            outcome.total_qom
        );
        let mapping = extract_mapping(&outcome.matrix, config.weights.acceptance_threshold());
        // Every node must map to itself.
        for c in &mapping.pairs {
            if c.score >= 0.999 {
                assert_eq!(c.source, c.target, "{}: {:?}", tree.name(), c);
            }
        }
    }
}

#[test]
fn corpus_schemas_round_trip_through_the_writer() {
    for src in [
        corpus::po1_xsd(),
        corpus::po2_xsd(),
        corpus::article_xsd(),
        corpus::book_xsd(),
        corpus::dcmd_item_xsd(),
        corpus::dcmd_ord_xsd(),
    ] {
        let original = parse_schema(src).unwrap();
        let rendered = qmatch::xsd::write_schema(&original);
        let reparsed = parse_schema(&rendered).expect("rendered corpus schema parses");
        assert_eq!(original, reparsed);
        // And the schema tree (what the matchers see) is identical too.
        assert_eq!(
            SchemaTree::compile(&original).unwrap(),
            SchemaTree::compile(&reparsed).unwrap()
        );
    }
}

#[test]
fn tree_edit_baseline_agrees_on_identity_and_difference() {
    let config = MatchConfig::default();
    let same = tree_edit_match(&corpus::po1(), &corpus::po1(), &config).total_qom;
    assert!((same - 1.0).abs() < 1e-12);
    let diff = tree_edit_match(&corpus::po1(), &corpus::book(), &config).total_qom;
    assert!(diff < same);
}

#[test]
fn all_algorithms_emit_normalized_matrices_on_all_small_pairs() {
    let config = MatchConfig::default();
    let pairs = [
        (corpus::po1(), corpus::po2()),
        (corpus::article(), corpus::book()),
        (corpus::dcmd_item(), corpus::dcmd_ord()),
        (figures::library_fig7(), figures::human_fig8()),
    ];
    for (source, target) in &pairs {
        for outcome in [
            linguistic_match(source, target, &config),
            structural_match(source, target, &config),
            hybrid_match(source, target, &config),
            tree_edit_match(source, target, &config),
        ] {
            outcome.matrix.assert_normalized();
            assert_eq!(outcome.matrix.rows(), source.len());
            assert_eq!(outcome.matrix.cols(), target.len());
        }
    }
}

#[test]
fn weights_ablation_label_only_vs_children_only() {
    // Sanity of the weight model end to end: a label-only configuration
    // reduces the hybrid to (leafwise) linguistic behaviour, a children-only
    // configuration to structural-coverage behaviour.
    let library = figures::library_fig7();
    let human = figures::human_fig8();
    let label_only = MatchConfig::with_weights(Weights::new(1.0, 0.0, 0.0, 0.0).unwrap());
    let children_only = MatchConfig::with_weights(Weights::new(0.0, 0.0, 0.0, 1.0).unwrap());
    let low = hybrid_match(&library, &human, &label_only).total_qom;
    let high = hybrid_match(&library, &human, &children_only).total_qom;
    assert!(low < 0.35, "{low}");
    assert!(high > 0.6, "{high}");
}
