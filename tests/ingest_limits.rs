//! Integration coverage for the ingestion limits: every `IngestLimits`
//! field has a just-under (Ok) and just-over (typed error naming the limit)
//! case, exercised through both the XML reader/DOM path and the schema-tree
//! builder path, plus an end-to-end "XML bomb" check.

use qmatch::xml::{Document, IngestLimits, XmlErrorKind};
use qmatch::xsd::{parse_schema_with_limits, SchemaTree, XsdError};
use std::fmt::Write as _;
use std::time::Instant;

fn xml_limit_name(result: Result<Document, qmatch::xml::XmlError>) -> &'static str {
    match result.expect_err("expected a limit error").kind() {
        XmlErrorKind::LimitExceeded { limit, .. } => limit,
        other => panic!("expected LimitExceeded, got {other:?}"),
    }
}

fn xsd_limit_name<T: std::fmt::Debug>(result: Result<T, XsdError>) -> &'static str {
    match result.expect_err("expected a limit error") {
        XsdError::LimitExceeded { limit, .. } => limit,
        other => panic!("expected LimitExceeded, got {other:?}"),
    }
}

// ---- reader / DOM path -------------------------------------------------

#[test]
fn max_input_bytes_boundary() {
    let doc = "<root/>"; // 7 bytes
    let under = IngestLimits {
        max_input_bytes: 7,
        ..IngestLimits::default()
    };
    assert!(Document::parse_with_limits(doc, &under).is_ok());
    let over = IngestLimits {
        max_input_bytes: 6,
        ..IngestLimits::default()
    };
    assert_eq!(
        xml_limit_name(Document::parse_with_limits(doc, &over)),
        "max_input_bytes"
    );
}

#[test]
fn max_depth_boundary_in_reader() {
    let doc = "<a><b><c/></b></a>"; // depth 3
    let under = IngestLimits {
        max_depth: 3,
        ..IngestLimits::default()
    };
    assert!(Document::parse_with_limits(doc, &under).is_ok());
    let over = IngestLimits {
        max_depth: 2,
        ..IngestLimits::default()
    };
    assert_eq!(
        xml_limit_name(Document::parse_with_limits(doc, &over)),
        "max_depth"
    );
}

#[test]
fn max_attributes_boundary() {
    let doc = r#"<a p="1" q="2" r="3"/>"#;
    let under = IngestLimits {
        max_attributes: 3,
        ..IngestLimits::default()
    };
    assert!(Document::parse_with_limits(doc, &under).is_ok());
    let over = IngestLimits {
        max_attributes: 2,
        ..IngestLimits::default()
    };
    assert_eq!(
        xml_limit_name(Document::parse_with_limits(doc, &over)),
        "max_attributes"
    );
}

#[test]
fn max_entity_expansion_boundary() {
    // The reader resolves no DTD entities, so decoded text can never exceed
    // the input; factor 1 admits everything, factor 0 forbids character
    // data outright (the defense-in-depth floor).
    let doc = "<a>text &amp; more</a>";
    let under = IngestLimits {
        max_entity_expansion: 1,
        ..IngestLimits::default()
    };
    assert!(Document::parse_with_limits(doc, &under).is_ok());
    let over = IngestLimits {
        max_entity_expansion: 0,
        ..IngestLimits::default()
    };
    assert_eq!(
        xml_limit_name(Document::parse_with_limits(doc, &over)),
        "max_entity_expansion"
    );
}

#[test]
fn max_nodes_boundary_in_dom() {
    let doc = "<a><b/><c/><d/></a>"; // 4 elements
    let under = IngestLimits {
        max_nodes: 4,
        ..IngestLimits::default()
    };
    assert!(Document::parse_with_limits(doc, &under).is_ok());
    let over = IngestLimits {
        max_nodes: 3,
        ..IngestLimits::default()
    };
    assert_eq!(
        xml_limit_name(Document::parse_with_limits(doc, &over)),
        "max_nodes"
    );
}

// ---- schema-tree builder path ------------------------------------------

/// Two levels of named types, three children each: root + 3 + 9 = 13 nodes.
const EXPANDING: &str = r#"<xs:schema xmlns:xs="x">
  <xs:complexType name="Inner"><xs:sequence>
    <xs:element name="i1" type="xs:string"/>
    <xs:element name="i2" type="xs:string"/>
    <xs:element name="i3" type="xs:string"/>
  </xs:sequence></xs:complexType>
  <xs:complexType name="Outer"><xs:sequence>
    <xs:element name="o1" type="Inner"/>
    <xs:element name="o2" type="Inner"/>
    <xs:element name="o3" type="Inner"/>
  </xs:sequence></xs:complexType>
  <xs:element name="root" type="Outer"/>
</xs:schema>"#;

#[test]
fn max_nodes_boundary_in_tree_builder() {
    let schema = parse_schema_with_limits(EXPANDING, &IngestLimits::default()).unwrap();
    let under = IngestLimits {
        max_nodes: 13,
        ..IngestLimits::default()
    };
    let tree = SchemaTree::compile_with_limits(&schema, &under).unwrap();
    assert_eq!(tree.len(), 13);
    let over = IngestLimits {
        max_nodes: 12,
        ..IngestLimits::default()
    };
    assert_eq!(
        xsd_limit_name(SchemaTree::compile_with_limits(&schema, &over)),
        "max_nodes"
    );
}

#[test]
fn max_depth_boundary_in_tree_builder() {
    // root(0) -> o*(1) -> i*(2): tree depth 2.
    let schema = parse_schema_with_limits(EXPANDING, &IngestLimits::default()).unwrap();
    let under = IngestLimits {
        max_depth: 2,
        ..IngestLimits::default()
    };
    assert_eq!(
        SchemaTree::compile_with_limits(&schema, &under)
            .unwrap()
            .max_depth(),
        2
    );
    let over = IngestLimits {
        max_depth: 1,
        ..IngestLimits::default()
    };
    assert_eq!(
        xsd_limit_name(SchemaTree::compile_with_limits(&schema, &over)),
        "max_depth"
    );
}

// ---- end-to-end bombs ---------------------------------------------------

#[test]
fn megabyte_nesting_bomb_fails_fast_with_default_limits() {
    // ~1 MB of unclosed open tags: 262,144 levels of nesting. With default
    // limits this must return a typed error quickly (the depth cap fires at
    // 512), allocating nothing near the input size.
    let bomb = "<a>".repeat(1024 * 1024 / 3);
    assert!(bomb.len() >= 1024 * 1024 - 3);
    let started = Instant::now();
    let result = parse_schema_with_limits(&bomb, &IngestLimits::default());
    let elapsed = started.elapsed();
    match result {
        Err(XsdError::LimitExceeded {
            limit: "max_depth", ..
        }) => {}
        other => panic!("expected a max_depth error, got {other:?}"),
    }
    assert!(
        elapsed.as_secs() < 1,
        "bomb took {elapsed:?}, expected well under a second"
    );
}

#[test]
fn wide_element_bomb_is_capped_by_node_count() {
    // A shallow but enormously wide schema trips max_nodes before building
    // an arbitrarily large DOM.
    let mut doc = String::from(
        "<xs:schema xmlns:xs=\"x\"><xs:element name=\"r\"><xs:complexType><xs:sequence>",
    );
    for i in 0..5000 {
        let _ = write!(doc, "<xs:element name=\"e{i}\" type=\"xs:string\"/>");
    }
    doc.push_str("</xs:sequence></xs:complexType></xs:element></xs:schema>");
    let limits = IngestLimits {
        max_nodes: 1000,
        ..IngestLimits::default()
    };
    assert_eq!(
        xsd_limit_name(parse_schema_with_limits(&doc, &limits)),
        "max_nodes"
    );
}

#[test]
fn attribute_bomb_is_capped() {
    let mut doc = String::from("<a");
    for i in 0..10_000 {
        let _ = write!(doc, " a{i}=\"v\"");
    }
    doc.push_str("/>");
    assert_eq!(
        xml_limit_name(Document::parse_with_limits(&doc, &IngestLimits::default())),
        "max_attributes"
    );
}

#[test]
fn default_limits_admit_real_corpus_schemas() {
    // The in-repo corpus schemas must all be far inside the default limits.
    use qmatch::datasets::corpus;
    let schemas: [(&str, &str); 6] = [
        ("po1", corpus::po1_xsd()),
        ("po2", corpus::po2_xsd()),
        ("article", corpus::article_xsd()),
        ("book", corpus::book_xsd()),
        ("dcmd_item", corpus::dcmd_item_xsd()),
        ("dcmd_ord", corpus::dcmd_ord_xsd()),
    ];
    for (name, text) in schemas {
        let schema = parse_schema_with_limits(text, &IngestLimits::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        SchemaTree::compile_with_limits(&schema, &IngestLimits::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}
